package core

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// cell fetches a rendered table cell by row label prefix and column index.
func cell(t *testing.T, tb *Table, rowPrefix string, col int) string {
	t.Helper()
	for _, row := range tb.Rows {
		if strings.HasPrefix(row[0], rowPrefix) {
			if col >= len(row) {
				t.Fatalf("table %q row %q has no column %d", tb.Title, rowPrefix, col)
			}
			return row[col]
		}
	}
	t.Fatalf("table %q has no row starting with %q; rows: %v", tb.Title, rowPrefix, tb.Rows)
	return ""
}

var durRe = regexp.MustCompile(`([0-9.]+)(µs|ms|s|min)`)

// parseDur parses the FmtDur format back into a duration.
func parseDur(t *testing.T, s string) time.Duration {
	t.Helper()
	m := durRe.FindStringSubmatch(s)
	if m == nil {
		t.Fatalf("cannot parse duration %q", s)
	}
	v, _ := strconv.ParseFloat(m[1], 64)
	switch m[2] {
	case "µs":
		return time.Duration(v * float64(time.Microsecond))
	case "ms":
		return time.Duration(v * float64(time.Millisecond))
	case "s":
		return time.Duration(v * float64(time.Second))
	default:
		return time.Duration(v * float64(time.Minute))
	}
}

func within(t *testing.T, what string, got time.Duration, lo, hi time.Duration) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %v, want within [%v, %v]", what, got, lo, hi)
	}
}

func TestRegistryComplete(t *testing.T) {
	exps := Experiments()
	if len(exps) != 20 {
		t.Errorf("registry has %d experiments, want 20", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Run == nil || e.Title == "" {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if got, ok := ExperimentByID(e.ID); !ok || got.ID != e.ID {
			t.Errorf("ExperimentByID(%q) failed", e.ID)
		}
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Error("ExperimentByID accepted unknown id")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tb := RunTable1(1)[0]
	row := tb.Rows[0] // measured latencies
	invoke := parseDur(t, row[1])
	lambdaS3 := parseDur(t, row[2])
	lambdaDDB := parseDur(t, row[3])
	ec2S3 := parseDur(t, row[4])
	ec2DDB := parseDur(t, row[5])
	zmq := parseDur(t, row[6])

	within(t, "invoke", invoke, 285*time.Millisecond, 320*time.Millisecond)      // paper: 303ms
	within(t, "lambda-s3", lambdaS3, 100*time.Millisecond, 116*time.Millisecond) // paper: 108ms
	within(t, "lambda-ddb", lambdaDDB, 10*time.Millisecond, 12*time.Millisecond) // paper: 11ms
	within(t, "ec2-s3", ec2S3, 100*time.Millisecond, 116*time.Millisecond)       // paper: 106ms
	within(t, "ec2-ddb", ec2DDB, 10*time.Millisecond, 12*time.Millisecond)       // paper: 11ms
	within(t, "zmq", zmq, 270*time.Microsecond, 310*time.Microsecond)            // paper: 290µs

	// The shape that matters: three orders of magnitude between pure
	// functional messaging and direct networking.
	if ratio := float64(invoke) / float64(zmq); ratio < 900 || ratio > 1200 {
		t.Errorf("invoke/zmq ratio = %.0f, paper reports 1,045x", ratio)
	}
	if ratio := float64(lambdaS3) / float64(zmq); ratio < 300 || ratio > 450 {
		t.Errorf("s3/zmq ratio = %.0f, paper reports 372x", ratio)
	}
}

func TestFigure1Headline(t *testing.T) {
	tb := RunFigure1(1)[0]
	if len(tb.Rows) != 2 {
		t.Fatalf("figure1 rows = %d", len(tb.Rows))
	}
	joined := strings.Join(tb.Notes, "\n")
	if !strings.Contains(joined, "Figure 1") {
		t.Error("chart missing from notes")
	}
}

func TestTrainingMatchesPaper(t *testing.T) {
	tb := RunTraining(1)[0]
	lambdaTotal := parseDur(t, cell(t, tb, "Lambda", 5))
	ec2Total := parseDur(t, cell(t, tb, "EC2 m4.large", 5))
	within(t, "lambda total", lambdaTotal, 440*time.Minute, 490*time.Minute) // paper: 465min
	within(t, "ec2 total", ec2Total, 20*time.Minute, 24*time.Minute)         // paper: ~21.7min

	slow := lambdaTotal.Seconds() / ec2Total.Seconds()
	if slow < 19 || slow > 24 {
		t.Errorf("slowdown = %.1fx, paper reports 21x", slow)
	}
	execs := cell(t, tb, "Lambda", 4)
	if n, _ := strconv.Atoi(execs); n < 30 || n > 33 {
		t.Errorf("lambda executions = %s, paper reports 31", execs)
	}
	// Costs parse from $x.xxxx strings.
	lambdaCost, _ := strconv.ParseFloat(strings.TrimPrefix(cell(t, tb, "Lambda", 6), "$"), 64)
	ec2Cost, _ := strconv.ParseFloat(strings.TrimPrefix(cell(t, tb, "EC2 m4.large", 6), "$"), 64)
	if lambdaCost < 0.27 || lambdaCost > 0.31 {
		t.Errorf("lambda cost = $%.4f, paper reports $0.29", lambdaCost)
	}
	if ec2Cost < 0.03 || ec2Cost > 0.05 {
		t.Errorf("ec2 cost = $%.4f, paper reports $0.04", ec2Cost)
	}
	if ratio := lambdaCost / ec2Cost; ratio < 6 || ratio > 9 {
		t.Errorf("cost ratio = %.1fx, paper reports 7.3x", ratio)
	}
}

func TestServingMatchesPaper(t *testing.T) {
	tb := RunServing(1)[0]
	fetch := parseDur(t, cell(t, tb, "Lambda, model fetched", 1))
	opt := parseDur(t, cell(t, tb, "Lambda, compiled-in", 1))
	sqs := parseDur(t, cell(t, tb, "EC2 m5.large + SQS", 1))
	zmq := parseDur(t, cell(t, tb, "EC2 m5.large + ZeroMQ", 1))

	within(t, "lambda-fetch", fetch, 525*time.Millisecond, 590*time.Millisecond) // paper: 559ms
	within(t, "lambda-opt", opt, 425*time.Millisecond, 470*time.Millisecond)     // paper: 447ms
	within(t, "ec2-sqs", sqs, 11*time.Millisecond, 15*time.Millisecond)          // paper: 13ms
	within(t, "ec2-zmq", zmq, 2500*time.Microsecond, 3300*time.Microsecond)      // paper: 2.8ms

	if fetch <= opt {
		t.Error("model fetch variant should be slower than compiled-in")
	}
	if ratio := float64(opt) / float64(zmq); ratio < 100 || ratio > 200 {
		t.Errorf("opt/zmq = %.0fx, paper reports 127x", ratio)
	}
}

func TestServingCostMatchesPaper(t *testing.T) {
	tb := RunServingCost(1)[0]
	sqsCost, _ := strconv.ParseFloat(strings.TrimPrefix(cell(t, tb, "SQS requests alone", 2), "$"), 64)
	ec2Cost, _ := strconv.ParseFloat(strings.TrimPrefix(cell(t, tb, "EC2 m5.large fleet", 2), "$"), 64)
	if sqsCost < 1500 || sqsCost > 1700 {
		t.Errorf("SQS hourly = $%.0f, paper reports $1,584", sqsCost)
	}
	if ec2Cost < 26 || ec2Cost > 30 {
		t.Errorf("EC2 hourly = $%.2f, paper reports $27.84", ec2Cost)
	}
	if ratio := sqsCost / ec2Cost; ratio < 50 || ratio > 65 {
		t.Errorf("cost ratio = %.0fx, paper reports 57x", ratio)
	}
}

func TestElectionMatchesPaper(t *testing.T) {
	tb := RunElection(1)[0]
	round := parseDur(t, cell(t, tb, "Election round", 1))
	within(t, "round", round, 14*time.Second, 19*time.Second) // paper: 16.7s

	share := cell(t, tb, "Share of 15-min lifetime", 1)
	v, _ := strconv.ParseFloat(strings.TrimSuffix(share, "%"), 64)
	if v < 1.5 || v > 2.2 {
		t.Errorf("lifetime share = %s, paper reports 1.9%%", share)
	}
	cost := cell(t, tb, "Storage cost, 1,000 nodes", 1)
	cv, _ := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(cost, "$"), "/hr"), 64)
	if cv < 400 || cv > 520 {
		t.Errorf("1,000-node cost = %s, paper reports >= $450/hr", cost)
	}
}

func TestBandwidthMatchesPaper(t *testing.T) {
	tb := RunBandwidth(1)[0]
	get := func(n string) float64 {
		c := cell(t, tb, n, 1)
		v, _ := strconv.ParseFloat(strings.Fields(c)[0], 64)
		return v
	}
	solo := get("1")
	packed := get("20")
	if solo < 520 || solo > 545 {
		t.Errorf("solo bandwidth = %.1f Mbps, paper reports 538", solo)
	}
	if packed < 24 || packed > 30 {
		t.Errorf("20-way bandwidth = %.1f Mbps, paper reports 28.7", packed)
	}
	if ratio := solo / packed; ratio < 18 || ratio > 22 {
		t.Errorf("collapse factor = %.1fx, want ~20x", ratio)
	}
}

func TestWorkflowOverheadShape(t *testing.T) {
	tb := RunWorkflow(1)[0]
	faasLat := parseDur(t, cell(t, tb, "FaaS pipeline", 1))
	monoLat := parseDur(t, cell(t, tb, "Single EC2 process", 1))
	if faasLat < 3*time.Second {
		t.Errorf("FaaS 8-step pipeline = %v, implausibly fast", faasLat)
	}
	if monoLat > 100*time.Millisecond {
		t.Errorf("monolith = %v, implausibly slow", monoLat)
	}
	if ratio := float64(faasLat) / float64(monoLat); ratio < 50 {
		t.Errorf("pipeline/monolith = %.0fx, want >= 50x", ratio)
	}
}

func TestFirecrackerAblation(t *testing.T) {
	tb := RunFirecracker(1)[0]
	warmClassic := parseDur(t, cell(t, tb, "Warm invoke", 1))
	warmFire := parseDur(t, cell(t, tb, "Warm invoke", 2))
	coldClassic := parseDur(t, cell(t, tb, "Cold invoke", 1))
	coldFire := parseDur(t, cell(t, tb, "Cold invoke", 2))
	// Warm path (Table 1 conditions) barely moves: "modest effects".
	diff := float64(warmClassic-warmFire) / float64(warmClassic)
	if diff < -0.05 || diff > 0.05 {
		t.Errorf("warm path moved %.1f%% under Firecracker, want ~0", diff*100)
	}
	if coldFire >= coldClassic {
		t.Error("Firecracker should cut cold starts")
	}
	if coldFire < 400*time.Millisecond {
		t.Errorf("Firecracker cold invoke = %v; should still carry ~300ms invoke overhead", coldFire)
	}
}

func TestFastNICAblation(t *testing.T) {
	tb := RunFastNIC(1)[0]
	c := cell(t, tb, "64", 1)
	v, _ := strconv.ParseFloat(strings.Fields(c)[0], 64)
	perCoreMBps := v / 8
	if perCoreMBps < 170 || perCoreMBps > 220 {
		t.Errorf("per-function bandwidth at 64-way = %.0f MB/s, paper predicts ~200", perCoreMBps)
	}
	if !strings.Contains(cell(t, tb, "64", 2), "slower") {
		t.Error("64-way packing should still trail an SSD")
	}
}

func TestFutureClosesTheGaps(t *testing.T) {
	tb := RunFuture(1)[0]
	training := cell(t, tb, "Model training", 2)
	train := parseDur(t, training)
	// Near-EC2 speed: paper's EC2 run is ~21.7min.
	within(t, "future training", train, 19*time.Minute, 25*time.Minute)
	serve := parseDur(t, cell(t, tb, "Prediction serving", 2))
	if serve > 5*time.Millisecond {
		t.Errorf("future serving = %v, want ZeroMQ-class", serve)
	}
	elect := parseDur(t, cell(t, tb, "Leader election", 2))
	if elect > time.Second {
		t.Errorf("future election = %v, want sub-second", elect)
	}
}

func TestElectionSweepShape(t *testing.T) {
	tb := RunElectionSweep(1)[0]
	if len(tb.Rows) != 4 {
		t.Fatalf("sweep rows = %d, want 4", len(tb.Rows))
	}
	prev := time.Duration(1 << 62)
	for _, row := range tb.Rows {
		round := parseDur(t, row[1])
		if round > prev+time.Second { // allow jitter, but trend must fall
			t.Errorf("round latency did not shrink with polling rate: %v after %v", round, prev)
		}
		prev = round
	}
}

func TestAutoscaleShape(t *testing.T) {
	tb := RunAutoscale(1)[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 load levels", len(tb.Rows))
	}
	// Below capacity: EC2 p50 ~50ms beats Lambda's ~350ms.
	lowLambda := parseDur(t, cell(t, tb, "10 req/s", 1))
	lowEC2 := parseDur(t, cell(t, tb, "10 req/s", 3))
	if lowEC2 >= lowLambda {
		t.Errorf("below capacity EC2 (%v) should beat Lambda (%v)", lowEC2, lowLambda)
	}
	if lowEC2 < 45*time.Millisecond || lowEC2 > 80*time.Millisecond {
		t.Errorf("EC2 p50 at low load = %v, want ~50ms", lowEC2)
	}
	// Above capacity: EC2 p99 diverges; Lambda p99 stays near its p50.
	hiLambda99 := parseDur(t, cell(t, tb, "50 req/s", 2))
	hiEC299 := parseDur(t, cell(t, tb, "50 req/s", 4))
	if hiEC299 < 5*time.Second {
		t.Errorf("overloaded EC2 p99 = %v, want queueing divergence (>5s)", hiEC299)
	}
	if hiLambda99 > 1500*time.Millisecond {
		t.Errorf("Lambda p99 under load = %v, want flat (autoscaling)", hiLambda99)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:  "T",
		Header: []string{"a", "bb"},
	}
	tb.AddRow("x", "y")
	tb.AddNote("n %d", 1)
	out := tb.Render()
	for _, want := range []string{"T\n", "a", "bb", "x", "y", "note: n 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFmtHelpers(t *testing.T) {
	cases := map[time.Duration]string{
		90 * time.Second:        "1.5min",
		1500 * time.Millisecond: "1.50s",
		250 * time.Millisecond:  "250.0ms",
		42 * time.Microsecond:   "42µs",
	}
	for in, want := range cases {
		if got := FmtDur(in); got != want {
			t.Errorf("FmtDur(%v) = %q, want %q", in, got, want)
		}
	}
	if FmtRatio(1045) != "1045x" || FmtRatio(37.9) != "37.9x" || FmtRatio(1.0) != "1.00x" {
		t.Error("FmtRatio formats wrong")
	}
}
