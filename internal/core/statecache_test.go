package core

import (
	"testing"
	"time"
)

// TestStateCacheBeatsStorageRoundTrips is the tentpole's acceptance gate:
// colocated CRDT reads must be at least 10x below the uncached
// DynamoDB-class baseline at the tail, the measured staleness window must
// be bounded by the gossip cadence, and the run must be seed-deterministic.
func TestStateCacheBeatsStorageRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("statecache scenario in -short mode")
	}
	uncached := runStateCache(1, 4, 0, false)
	cached := runStateCache(1, 4, 200*time.Millisecond, true)

	if cached.p99 <= 0 || uncached.p99 <= 0 {
		t.Fatalf("degenerate percentiles: cached %v, uncached %v", cached.p99, uncached.p99)
	}
	if ratio := float64(uncached.p99) / float64(cached.p99); ratio < 10 {
		t.Errorf("cached read p99 %v only %.1fx below uncached %v, want >= 10x",
			cached.p99, ratio, uncached.p99)
	}
	// The staleness window must be reported and bounded: convergence is
	// a few gossip rounds, not unbounded drift.
	if cached.staleP99 <= 0 {
		t.Error("no staleness window measured")
	}
	if cached.staleP99 > 10*cached.interval {
		t.Errorf("staleness p99 %v not bounded by gossip cadence %v",
			cached.staleP99, cached.interval)
	}
	// Local-latency ops let the same workers push more ops through.
	if cached.throughput <= uncached.throughput {
		t.Errorf("cached throughput %.0f not above uncached %.0f",
			cached.throughput, uncached.throughput)
	}

	if again := runStateCache(1, 4, 200*time.Millisecond, true); again != cached {
		t.Errorf("statecache scenario is nondeterministic: %+v vs %+v", again, cached)
	}
}

// TestStateCacheStalenessTracksGossipInterval: tightening the gossip
// cadence must tighten the measured staleness window.
func TestStateCacheStalenessTracksGossipInterval(t *testing.T) {
	if testing.Short() {
		t.Skip("statecache sweep in -short mode")
	}
	fast := runStateCache(1, 4, 50*time.Millisecond, true)
	slow := runStateCache(1, 4, time.Second, true)
	if fast.staleP99 >= slow.staleP99 {
		t.Errorf("staleness p99 %v at 50ms gossip not below %v at 1s",
			fast.staleP99, slow.staleP99)
	}
}
