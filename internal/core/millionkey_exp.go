package core

// The millionkey scenario: §4's fluid state at a real key space. The
// statecache experiment runs 64 hot keys, where shipping one digest line
// per key per gossip round is harmless; at a million cached keys that
// digest is ~32MB per round per pair, and the O(keys) protocol drowns.
// This experiment preloads ~1M converged keys onto 8–32 replicas, drives
// a small hot write set through a measurement window, and compares the
// default digest protocol against IBF set reconciliation
// (statecache.Config.Reconcile): the IBF summary is ~constant-size, so a
// converged steady-state round costs O(symmetric difference) bytes —
// orders of magnitude below the digest exchange at the same key count.
//
// Phases: writes run for millionKeyWindow, anti-entropy quiesces for
// millionKeyQuiesce (convergence time = last state-changing merge after
// the window), then a steady phase measures the converged bytes/round the
// headline ratio is computed from.

import (
	"fmt"
	"time"

	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
	"repro/internal/statecache"
	"repro/internal/sweep"
)

const (
	// millionKeyDefault is the preloaded key-space size.
	millionKeyDefault = 1_000_000
	// millionKeyHot is the hot subset the write window touches, spread
	// evenly across the key space.
	millionKeyHot = 4096
	// millionKeyWriteRate is the cluster-wide write rate during the window.
	millionKeyWriteRate = 500.0
	// millionKeyWindow is the write window of virtual time.
	millionKeyWindow = 2 * time.Second
	// millionKeyQuiesce is the post-window convergence horizon.
	millionKeyQuiesce = 15 * time.Second
	// millionKeySteady is the converged measurement phase the steady-state
	// bytes/round (and the digest-vs-IBF headline ratio) come from.
	millionKeySteady = 5 * time.Second
	// millionKeyGossip is the anti-entropy cadence.
	millionKeyGossip = 200 * time.Millisecond
	// millionKeyCells sizes the IBF summary (~20KB on the wire): decode
	// holds w.h.p. while a pair disagrees on fewer than ~500 keys, which
	// covers the write rate × propagation staleness at this load; larger
	// bursts escalate per recon.go's ladder.
	millionKeyCells = 1024
)

// millionKeyResult is one (protocol, replica count) measurement.
type millionKeyResult struct {
	protocol  string
	replicas  int
	keyCount  int
	writes    int
	rounds    int64
	aborted   int64
	steadyPer int64 // bytes/round across the converged steady phase
	// Whole-run per-round averages by leg.
	summaryPer, payloadPer, pushPer int64
	converge                        time.Duration
	staleP99                        time.Duration
	cacheCost                       float64 // cache GB-second $/hr
}

// runMillionKey measures one protocol at one replica count, parameterized
// by key count so tests and the bench smoke can scale it down.
func runMillionKey(seed uint64, replicas, keyCount int, reconcile bool) millionKeyResult {
	k := sim.NewKernel()
	defer k.Close()
	rng := simrand.New(seed)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	meter := &pricing.Meter{}
	catalog := pricing.Fall2018()
	store := kvstore.New("mk-ddb", net, 9, rng.Fork(), kvstore.DefaultConfig(), catalog, meter)

	sc := statecache.DefaultConfig()
	sc.GossipInterval = millionKeyGossip
	// The preloaded space models already-durable state, so the write-behind
	// flush is parked outside the run (its cost story is statecache's).
	sc.FlushInterval = time.Hour
	sc.SketchStaleness = true
	sc.Reconcile = reconcile
	sc.ReconCells = millionKeyCells
	cl := statecache.New("mkcache", net, store, rng.Fork(), sc, catalog, meter)

	caches := make([]*statecache.Cache, replicas)
	for i := range caches {
		node := net.NewNode(fmt.Sprintf("mk-vm-%d", i), 1+i/8, netsim.Mbps(538))
		caches[i] = cl.Attach(node)
	}
	// One shared key-string slice; ascending preload order appends to each
	// replica's sorted index in O(1), and identical values share one
	// template register, so the warm start is allocation-lean.
	keys := make([]string, keyCount)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%08d", i)
	}
	for _, c := range caches {
		for _, key := range keys {
			c.Preload(key, "cold")
		}
	}

	hot := millionKeyHot
	if hot > keyCount {
		hot = keyCount
	}
	stride := keyCount / hot
	writes := 0
	wrng := rng.Fork()
	k.Spawn("mk-writer", func(p *sim.Proc) {
		gap := simrand.Exponential{Mean: time.Duration(float64(time.Second) / millionKeyWriteRate)}
		end := sim.Time(millionKeyWindow)
		for {
			p.Sleep(gap.Sample(wrng))
			if p.Now() >= end {
				return
			}
			c := caches[wrng.Intn(len(caches))]
			key := keys[wrng.Intn(hot)*stride]
			c.SetRegister(p, key, fmt.Sprintf("v%d", writes))
			writes++
		}
	})

	k.RunUntil(sim.Time(millionKeyWindow + millionKeyQuiesce))
	var converge time.Duration
	if lm := cl.LastMergeChange(); lm > sim.Time(millionKeyWindow) {
		converge = time.Duration(lm - sim.Time(millionKeyWindow))
	}
	steadyBase := cl.GossipBytes()
	steadyRounds := cl.GossipRounds()
	k.RunUntil(sim.Time(millionKeyWindow + millionKeyQuiesce + millionKeySteady))
	cl.Accrue(k.Now())

	span := millionKeyWindow + millionKeyQuiesce + millionKeySteady
	traffic := cl.GossipBytes()
	rounds := cl.GossipRounds()
	res := millionKeyResult{
		protocol:  "digest",
		replicas:  replicas,
		keyCount:  keyCount,
		writes:    writes,
		rounds:    rounds,
		aborted:   cl.AbortedRounds(),
		converge:  converge,
		staleP99:  cl.Staleness().Percentile(99),
		cacheCost: float64(meter.Cost("statecache.gbsec")) / span.Hours(),
	}
	if reconcile {
		res.protocol = "ibf"
	}
	if rounds > 0 {
		res.summaryPer = traffic.Summary / rounds
		res.payloadPer = traffic.Payload / rounds
		res.pushPer = traffic.Push / rounds
	}
	if n := rounds - steadyRounds; n > 0 {
		res.steadyPer = (traffic.Total() - steadyBase.Total()) / n
	}
	return res
}

// RunMillionKey regenerates the million-key reconciliation table: the
// digest baseline at 8 replicas against IBF reconciliation at 8/16/32,
// reporting per-round gossip bytes by leg, the converged steady-state
// bytes/round, convergence time after writes stop, staleness p99, and the
// cache memory bill.
func RunMillionKey(seed uint64) []*Table {
	t := &Table{
		Title: fmt.Sprintf("Million-key gossip: IBF set reconciliation vs per-key digests (%d keys)",
			millionKeyDefault),
		Header: []string{"Protocol", "Replicas", "Rounds", "Steady B/rnd",
			"Summary B/rnd", "Payload B/rnd", "Push B/rnd", "Converge", "Stale p99", "Cache $/hr"},
	}
	type point struct {
		replicas  int
		reconcile bool
	}
	points := []point{{8, false}, {8, true}, {16, true}, {32, true}}
	// Each point is an independent simulation of (seed, point); the sweep
	// engine fans them across cores and rows commit in point order. (At the
	// full key count each point holds replicas × 1M entries resident —
	// use -workers 1 on RAM-tight machines.)
	results := sweep.Map(points, func(_ int, pt point) millionKeyResult {
		return runMillionKey(seed, pt.replicas, millionKeyDefault, pt.reconcile)
	})
	var digestSteady, ibfSteady int64
	for _, r := range results {
		if r.protocol == "digest" && r.replicas == 8 {
			digestSteady = r.steadyPer
		}
		if r.protocol == "ibf" && r.replicas == 8 {
			ibfSteady = r.steadyPer
		}
		t.AddRow(
			r.protocol,
			fmt.Sprintf("%d", r.replicas),
			fmt.Sprintf("%d", r.rounds),
			FmtBytes(r.steadyPer),
			FmtBytes(r.summaryPer),
			FmtBytes(r.payloadPer),
			FmtBytes(r.pushPer),
			FmtDur(r.converge),
			FmtDur(r.staleP99),
			fmt.Sprintf("$%.2f/hr", r.cacheCost),
		)
	}
	if digestSteady > 0 && ibfSteady > 0 {
		t.AddNote("converged steady state: %s/round digest vs %s/round IBF at 8 replicas (%s fewer bytes)",
			FmtBytes(digestSteady), FmtBytes(ibfSteady),
			FmtRatio(float64(digestSteady)/float64(ibfSteady)))
	}
	t.AddNote("%d keys preloaded converged on every replica; %.0f writes/s over %d hot keys for %s,",
		millionKeyDefault, millionKeyWriteRate, millionKeyHot, FmtDur(millionKeyWindow))
	t.AddNote("then %s of quiesce (converge = last state-changing merge after writes stop) and a %s",
		FmtDur(millionKeyQuiesce), FmtDur(millionKeySteady))
	t.AddNote("steady phase for the converged bytes/round; IBF summary is %d cells (%s + framing)",
		millionKeyCells, FmtBytes(20*int64(millionKeyCells)))
	t.AddNote("per round vs ~%s of per-key digest lines; write-behind flush parked (durability",
		FmtBytes(int64(millionKeyDefault)*32))
	t.AddNote("costs are the statecache experiment's story)")
	return []*Table{t}
}
