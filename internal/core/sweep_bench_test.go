package core

import (
	"testing"
	"time"

	"repro/internal/simrand"
	"repro/internal/sweep"
)

// stateCacheGrid is the full replicas × gossip benchmark grid: 3×3 cached
// configurations, each an independent simulation whose seed derives from
// (base seed 1, point index) via simrand.Derive. Unlike the statecache
// experiment table (which keeps its golden-pinned 6 points), this grid is
// the wall-clock yardstick for the sweep engine.
func stateCacheGrid() []struct {
	workers  int
	interval time.Duration
} {
	replicas := []int{2, 4, 8}
	gossip := []time.Duration{50 * time.Millisecond, 200 * time.Millisecond, time.Second}
	grid := make([]struct {
		workers  int
		interval time.Duration
	}, 0, len(replicas)*len(gossip))
	for _, r := range replicas {
		for _, g := range gossip {
			grid = append(grid, struct {
				workers  int
				interval time.Duration
			}{r, g})
		}
	}
	return grid
}

// runStateCacheGrid sweeps the 3×3 grid at the given worker count.
func runStateCacheGrid(workers int) []stateCacheResult {
	grid := stateCacheGrid()
	return sweep.PointsN(workers, len(grid), func(i int) stateCacheResult {
		return runStateCache(simrand.Derive(1, i), grid[i].workers, grid[i].interval, true)
	})
}

// TestStateCacheGridWorkerInvariance: the Derive-seeded benchmark grid
// produces identical measurements sequentially and in parallel.
func TestStateCacheGridWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("3×3 statecache grid in -short mode")
	}
	seq := runStateCacheGrid(1)
	par := runStateCacheGrid(4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("grid point %d diverged: sequential %+v, parallel %+v", i, seq[i], par[i])
		}
	}
}

// BenchmarkSweepStateCacheSequential is the single-core twin of the
// parallel sweep benchmark: the full 3×3 statecache grid on one worker.
// ns/op is wall time per grid.
func BenchmarkSweepStateCacheSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if res := runStateCacheGrid(1); len(res) != 9 {
			b.Fatal("incomplete grid")
		}
	}
	b.ReportMetric(1, "workers")
}

// BenchmarkSweepStateCacheParallel runs the same 3×3 grid at the resolved
// sweep worker count (GOMAXPROCS unless -workers/SWEEP_WORKERS override).
// Compare ns/op against the sequential twin for the sweep engine's
// wall-clock speedup; results are byte-identical either way.
func BenchmarkSweepStateCacheParallel(b *testing.B) {
	w := sweep.Workers()
	for i := 0; i < b.N; i++ {
		if res := runStateCacheGrid(w); len(res) != 9 {
			b.Fatal("incomplete grid")
		}
	}
	b.ReportMetric(float64(w), "workers")
}
