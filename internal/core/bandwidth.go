package core

import (
	"fmt"
	"time"

	"repro/internal/faas"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// measurePerFunctionMbps invokes n concurrent bulk-transfer functions (all
// packed onto shared VMs by the platform) and returns the mean per-function
// achieved bandwidth in Mbps. Functions rendezvous on a barrier so their
// transfers fully overlap.
func measurePerFunctionMbps(c *Cloud, n int, transferBytes int64) float64 {
	sink := c.Net.NewNode(fmt.Sprintf("iperf-sink-%d", n), ServiceRack, netsim.Gbps(400))
	ready := 0
	barrier := &sim.Latch{}
	var totalMbps float64
	finished := 0

	fnName := fmt.Sprintf("pump-%d", n)
	if err := c.Lambda.Register(faas.Function{
		Name: fnName, MemoryMB: 512, Timeout: 15 * time.Minute,
		Handler: func(ctx *faas.Ctx, _ []byte) ([]byte, error) {
			p := ctx.Proc()
			ready++
			if ready == n {
				barrier.Release()
			}
			barrier.Wait(p)
			start := p.Now()
			c.Net.Fabric().Transfer(p, transferBytes, ctx.Node().NIC(), sink.NIC())
			secs := time.Duration(p.Now() - start).Seconds()
			totalMbps += float64(transferBytes) * 8 / 1e6 / secs
			finished++
			return nil, nil
		},
	}); err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		c.K.Spawn("driver", func(p *sim.Proc) {
			if _, _, err := c.Lambda.Invoke(p, fnName, nil); err != nil {
				panic(err)
			}
		})
	}
	if !runKernelUntil(c.K, c.K.Now()+sim.Time(2*time.Hour), sim.Time(10*time.Second),
		func() bool { return finished == n }) {
		panic("bandwidth: transfers did not finish")
	}
	return totalMbps / float64(n)
}

// RunBandwidth regenerates the §3 constraint-(2) observation: a lone
// function sees ~538 Mbps, but because the platform packs one user's
// functions onto shared VMs, per-function bandwidth collapses as
// concurrency grows (the paper quotes 28.7 Mbps average at 20 functions,
// 2.5 orders of magnitude below one SSD).
func RunBandwidth(seed uint64) []*Table {
	t := &Table{
		Title:  "§3(2): per-function network bandwidth under same-VM packing",
		Header: []string{"Concurrent functions", "Per-function bandwidth", "vs one SSD (2.5GB/s)"},
	}
	for _, n := range []int{1, 2, 4, 8, 12, 16, 20} {
		c := NewCloud(seed + uint64(n))
		mbps := measurePerFunctionMbps(c, n, 32e6)
		c.Close()
		mbPerSec := mbps / 8
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.1f Mbps", mbps),
			FmtRatio(SSDBandwidthMBps/mbPerSec)+" slower")
	}
	t.AddRow("paper: 1", "538 Mbps", "37x slower")
	t.AddRow("paper: 20", "28.7 Mbps", "~700x slower")
	t.AddNote("the collapse is emergent: 20 flows share one 538 Mbps VM NIC under max-min fairness")
	return []*Table{t}
}

// RunFastNIC regenerates footnote 4's what-if: AWS's announced 100 Gbps
// networking on 64-core hosts. Solo functions look great; under full
// packing each core still gets ~200 MB/s — an order of magnitude below one
// SSD, so the architectural problem stands.
func RunFastNIC(seed uint64) []*Table {
	cfg := DefaultConfig()
	cfg.Lambda.VMNICBps = netsim.Gbps(100)
	cfg.Lambda.ContainersPerVM = 64

	t := &Table{
		Title:  "Ablation (footnote 4): 100 Gbps VM NIC, 64-way packing",
		Header: []string{"Concurrent functions", "Per-function bandwidth", "vs one SSD (2.5GB/s)"},
	}
	for _, n := range []int{1, 16, 64} {
		c := NewCloudWith(seed+uint64(n), cfg)
		mbps := measurePerFunctionMbps(c, n, 256e6)
		c.Close()
		mbPerSec := mbps / 8
		rel := "faster"
		ratio := mbPerSec / SSDBandwidthMBps
		if ratio < 1 {
			rel = "slower"
			ratio = 1 / ratio
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.0f Mbps", mbps),
			FmtRatio(ratio)+" "+rel)
	}
	t.AddNote("paper: \"even with 100Gbps/64 cores, under load you get ~200MBps per core,")
	t.AddNote("still an order of magnitude slower than a single SSD\"")
	return []*Table{t}
}
