// Package trends reproduces Figure 1: Google Trends interest in
// "Serverless" versus "Map Reduce"/"MapReduce", 2004 to publication.
//
// Google's query logs are proprietary, so the series here are synthetic but
// shape-faithful reconstructions (documented substitution): MapReduce rises
// after 2004, plateaus around 2012–2015, and declines; Serverless is near
// zero until ~2015 and climbs steeply until, by late 2018, it matches
// MapReduce's historic peak — which is the figure's entire point.
package trends

import (
	"fmt"
	"math"
	"strings"
)

// Point is one quarter's interest score (Google Trends style, 0-100 scaled
// to the all-time maximum across both series).
type Point struct {
	Year    int
	Quarter int // 1-4
	Value   float64
}

// Label formats the point's time as "2016Q3".
func (p Point) Label() string { return fmt.Sprintf("%dQ%d", p.Year, p.Quarter) }

// Series is a named sequence of quarterly points.
type Series struct {
	Name   string
	Points []Point
}

// Peak returns the maximum value and when it occurred.
func (s Series) Peak() (float64, Point) {
	var best Point
	max := math.Inf(-1)
	for _, p := range s.Points {
		if p.Value > max {
			max = p.Value
			best = p
		}
	}
	return max, best
}

// Last returns the final point.
func (s Series) Last() Point { return s.Points[len(s.Points)-1] }

// quarters enumerates 2004Q1 .. 2018Q4.
func quarters() []Point {
	var pts []Point
	for y := 2004; y <= 2018; y++ {
		for q := 1; q <= 4; q++ {
			pts = append(pts, Point{Year: y, Quarter: q})
		}
	}
	return pts
}

// logistic is the S-curve both adoption ramps follow.
func logistic(t, mid, rate float64) float64 {
	return 1 / (1 + math.Exp(-rate*(t-mid)))
}

// MapReduce returns the synthetic "Map Reduce" interest series.
func MapReduce() Series {
	s := Series{Name: "MapReduce"}
	for _, p := range quarters() {
		t := float64(p.Year) + float64(p.Quarter-1)/4
		// Ramp after the 2004 OSDI paper, peak ~2012-2015, slow decline.
		rise := logistic(t, 2008.5, 1.1)
		decline := 1 - 0.55*logistic(t, 2016.5, 1.3)
		p.Value = 100 * rise * decline
		s.Points = append(s.Points, p)
	}
	return s
}

// Serverless returns the synthetic "Serverless" interest series.
func Serverless() Series {
	s := Series{Name: "Serverless"}
	for _, p := range quarters() {
		t := float64(p.Year) + float64(p.Quarter-1)/4
		// Lambda launched late 2014; the term takes off ~2016 and by the
		// paper's publication matches MapReduce's historic peak.
		p.Value = 97 * logistic(t, 2016.8, 1.6)
		s.Points = append(s.Points, p)
	}
	return s
}

// CrossoverQuarter returns the first point where serverless interest
// exceeds MapReduce's, or nil if never.
func CrossoverQuarter() *Point {
	mr, sl := MapReduce(), Serverless()
	for i := range sl.Points {
		if sl.Points[i].Value > mr.Points[i].Value {
			p := sl.Points[i]
			return &p
		}
	}
	return nil
}

// Chart renders both series as an ASCII chart of the given height.
func Chart(height int) string {
	if height < 4 {
		height = 4
	}
	mr, sl := MapReduce(), Serverless()
	n := len(mr.Points)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: Google Trends (synthetic reconstruction), 2004-2018\n")
	fmt.Fprintf(&b, "  M = MapReduce   S = Serverless   * = both\n\n")
	for row := height; row >= 1; row-- {
		lo := float64(row-1) * 100 / float64(height)
		fmt.Fprintf(&b, "%3.0f |", lo)
		for i := 0; i < n; i++ {
			m := mr.Points[i].Value >= lo && mr.Points[i].Value > 0.5
			s := sl.Points[i].Value >= lo && sl.Points[i].Value > 0.5
			switch {
			case m && s:
				b.WriteByte('*')
			case m:
				b.WriteByte('M')
			case s:
				b.WriteByte('S')
			default:
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("    +")
	b.WriteString(strings.Repeat("-", n))
	b.WriteString("\n     ")
	for i := 0; i < n; i += 8 {
		label := fmt.Sprintf("%-8d", mr.Points[i].Year)
		b.WriteString(label)
	}
	b.WriteString("\n")
	return b.String()
}
