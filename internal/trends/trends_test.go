package trends

import (
	"strings"
	"testing"
)

func TestSeriesCoverage(t *testing.T) {
	for _, s := range []Series{MapReduce(), Serverless()} {
		if len(s.Points) != 60 { // 15 years x 4 quarters
			t.Errorf("%s has %d points, want 60", s.Name, len(s.Points))
		}
		first, last := s.Points[0], s.Last()
		if first.Year != 2004 || first.Quarter != 1 {
			t.Errorf("%s starts at %s", s.Name, first.Label())
		}
		if last.Year != 2018 || last.Quarter != 4 {
			t.Errorf("%s ends at %s", s.Name, last.Label())
		}
		for _, p := range s.Points {
			if p.Value < 0 || p.Value > 100 {
				t.Errorf("%s %s = %v out of [0,100]", s.Name, p.Label(), p.Value)
			}
		}
	}
}

// The figure's headline: by publication, serverless queries match the
// historic MapReduce peak.
func TestServerlessMatchesMapReducePeakByPublication(t *testing.T) {
	mrPeak, mrWhen := MapReduce().Peak()
	slNow := Serverless().Last().Value
	if ratio := slNow / mrPeak; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("serverless 2018Q4 (%.1f) vs MapReduce peak (%.1f at %s): ratio %.2f, want ~1",
			slNow, mrPeak, mrWhen.Label(), ratio)
	}
}

func TestMapReduceShape(t *testing.T) {
	mr := MapReduce()
	_, peak := mr.Peak()
	if peak.Year < 2011 || peak.Year > 2016 {
		t.Errorf("MapReduce peak at %s, want 2011-2016", peak.Label())
	}
	if early := mr.Points[0].Value; early > 5 {
		t.Errorf("MapReduce 2004Q1 = %v, want near zero", early)
	}
	if last := mr.Last().Value; last >= peak.Value {
		t.Error("MapReduce should decline from its peak")
	}
}

func TestServerlessShape(t *testing.T) {
	sl := Serverless()
	at2014 := 0.0
	for _, p := range sl.Points {
		if p.Year == 2014 && p.Quarter == 4 {
			at2014 = p.Value
		}
	}
	if at2014 > 10 {
		t.Errorf("serverless 2014Q4 = %v, want near zero (pre-takeoff)", at2014)
	}
	// Monotone growth after 2015.
	var prev float64
	for _, p := range sl.Points {
		if p.Year >= 2015 {
			if p.Value < prev {
				t.Errorf("serverless declined at %s", p.Label())
			}
			prev = p.Value
		}
	}
}

func TestCrossoverHappensLate(t *testing.T) {
	x := CrossoverQuarter()
	if x == nil {
		t.Fatal("serverless never crosses MapReduce")
	}
	if x.Year < 2016 || x.Year > 2018 {
		t.Errorf("crossover at %s, want 2016-2018", x.Label())
	}
}

func TestChartRenders(t *testing.T) {
	c := Chart(10)
	for _, want := range []string{"Figure 1", "M", "S", "2004"} {
		if !strings.Contains(c, want) {
			t.Errorf("chart missing %q:\n%s", want, c)
		}
	}
	if lines := strings.Count(c, "\n"); lines < 12 {
		t.Errorf("chart has %d lines, want >= 12", lines)
	}
	if tiny := Chart(1); !strings.Contains(tiny, "Figure 1") {
		t.Error("minimum-height chart failed")
	}
}
