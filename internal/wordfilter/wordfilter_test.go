package wordfilter

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestIsDirty(t *testing.T) {
	m := NewModel([]string{"darn", "heck"})
	cases := []struct {
		word string
		want bool
	}{
		{"darn", true},
		{"DARN", true},
		{"darn!", true},
		{"(heck)", true},
		{"hello", false},
		{"darnit", false},
	}
	for _, c := range cases {
		if got := m.IsDirty(c.word); got != c.want {
			t.Errorf("IsDirty(%q) = %v, want %v", c.word, got, c.want)
		}
	}
}

func TestCleanReplacesWithPunctuation(t *testing.T) {
	m := DefaultModel()
	out, n := m.Clean("what the heck is this lousy thing")
	if n != 2 {
		t.Fatalf("replaced %d words, want 2", n)
	}
	if strings.Contains(out, "heck") || strings.Contains(out, "lousy") {
		t.Errorf("dirty words survived: %q", out)
	}
	if !strings.Contains(out, "!@#$") {
		t.Errorf("no punctuation mask in %q", out)
	}
}

func TestCleanPreservesCleanDocs(t *testing.T) {
	m := DefaultModel()
	doc := "a perfectly wholesome document"
	out, n := m.Clean(doc)
	if n != 0 || out != doc {
		t.Errorf("Clean(%q) = %q, %d", doc, out, n)
	}
}

func TestMaskPreservesLengthAndTail(t *testing.T) {
	m := NewModel([]string{"darn"})
	out, n := m.Clean("darn!")
	if n != 1 {
		t.Fatalf("n = %d", n)
	}
	if len(out) != len("darn!") {
		t.Errorf("mask changed length: %q", out)
	}
	if !strings.HasSuffix(out, "!") {
		t.Errorf("trailing punctuation lost: %q", out)
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	m := DefaultModel()
	m2 := Parse(m.Serialize())
	if m2.Size() != m.Size() {
		t.Fatalf("sizes differ: %d vs %d", m2.Size(), m.Size())
	}
	for _, w := range DefaultBlacklist() {
		if !m2.IsDirty(w) {
			t.Errorf("round-tripped model lost %q", w)
		}
	}
}

func TestSerializeDeterministic(t *testing.T) {
	a := string(DefaultModel().Serialize())
	b := string(DefaultModel().Serialize())
	if a != b {
		t.Error("Serialize is not deterministic")
	}
}

func TestNewModelIgnoresBlanks(t *testing.T) {
	m := NewModel([]string{"", "  ", "ok"})
	if m.Size() != 1 {
		t.Errorf("Size = %d, want 1", m.Size())
	}
}

// Property: cleaning is idempotent and never reintroduces dirty words.
func TestQuickCleanIdempotent(t *testing.T) {
	m := DefaultModel()
	prop := func(wordsRaw []uint8) bool {
		vocab := append(DefaultBlacklist(), "alpha", "beta", "gamma", "delta")
		var words []string
		for _, w := range wordsRaw {
			words = append(words, vocab[int(w)%len(vocab)])
		}
		doc := strings.Join(words, " ")
		once, _ := m.Clean(doc)
		twice, n2 := m.Clean(once)
		return once == twice && n2 == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
