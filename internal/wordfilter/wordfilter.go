// Package wordfilter implements the prediction-serving case study's
// workload: a classifier that marks each word of a document "dirty" or not
// against a blacklist and rewrites dirty words as punctuation — exactly the
// "trivial classifier" the paper runs behind SQS batching.
package wordfilter

import (
	"sort"
	"strings"
)

// Model is a blacklist classifier.
type Model struct {
	blacklist map[string]struct{}
}

// NewModel builds a model from a blacklist (matching is case-insensitive).
func NewModel(words []string) *Model {
	m := &Model{blacklist: make(map[string]struct{}, len(words))}
	for _, w := range words {
		w = strings.ToLower(strings.TrimSpace(w))
		if w != "" {
			m.blacklist[w] = struct{}{}
		}
	}
	return m
}

// DefaultBlacklist is the word list used by the experiments (mild stand-ins;
// the paper's actual list is not published).
func DefaultBlacklist() []string {
	return []string{
		"darn", "heck", "blast", "drat", "crud",
		"bogus", "lousy", "rotten", "garbage", "junk",
	}
}

// DefaultModel returns a model over DefaultBlacklist.
func DefaultModel() *Model { return NewModel(DefaultBlacklist()) }

// Size returns the number of blacklisted words.
func (m *Model) Size() int { return len(m.blacklist) }

// IsDirty classifies one word (punctuation-insensitive).
func (m *Model) IsDirty(word string) bool {
	_, ok := m.blacklist[normalize(word)]
	return ok
}

// Clean rewrites every dirty word in doc as punctuation marks of the same
// length and returns the cleaned document and the number of replacements.
func (m *Model) Clean(doc string) (string, int) {
	words := strings.Fields(doc)
	replaced := 0
	for i, w := range words {
		if m.IsDirty(w) {
			words[i] = mask(w)
			replaced++
		}
	}
	if replaced == 0 {
		return doc, 0
	}
	return strings.Join(words, " "), replaced
}

// normalize lowercases and strips leading/trailing punctuation.
func normalize(w string) string {
	return strings.ToLower(strings.Trim(w, ".,!?;:'\"()[]{}"))
}

// mask replaces a word's letters with cycling punctuation, preserving any
// trailing punctuation of the original token.
func mask(w string) string {
	marks := []byte{'!', '@', '#', '$', '%'}
	core := strings.TrimRight(w, ".,!?;:'\"")
	tail := w[len(core):]
	out := make([]byte, len(core))
	for i := range out {
		out[i] = marks[i%len(marks)]
	}
	return string(out) + tail
}

// Serialize encodes the model for storage (one word per line, sorted), the
// artifact the unoptimized Lambda variant fetches from S3 on every
// invocation.
func (m *Model) Serialize() []byte {
	words := make([]string, 0, len(m.blacklist))
	for w := range m.blacklist {
		words = append(words, w)
	}
	sort.Strings(words)
	return []byte(strings.Join(words, "\n"))
}

// Parse decodes a serialized model.
func Parse(data []byte) *Model {
	return NewModel(strings.Split(string(data), "\n"))
}
