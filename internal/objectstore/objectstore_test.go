package objectstore

import (
	"errors"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

type fixture struct {
	k      *sim.Kernel
	store  *Store
	caller *netsim.Node
	meter  *pricing.Meter
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Close)
	rng := simrand.New(42)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	meter := &pricing.Meter{}
	store := New("s3", net, 9, rng.Fork(), cfg, pricing.Fall2018(), meter)
	caller := net.NewNode("caller", 0, netsim.Mbps(538))
	return &fixture{k: k, store: store, caller: caller, meter: meter}
}

func TestPutGetRoundTrip(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var got Object
	var err error
	f.k.Spawn("client", func(p *sim.Proc) {
		f.store.Put(p, f.caller, "k", []byte("hello"))
		got, err = f.store.Get(p, f.caller, "k")
	})
	f.k.Run()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got.Data) != "hello" || got.Size != 5 {
		t.Errorf("got %+v", got)
	}
}

func TestGetMissingKey(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var err error
	f.k.Spawn("client", func(p *sim.Proc) {
		_, err = f.store.Get(p, f.caller, "nope")
	})
	f.k.Run()
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

// Calibration: a 1KB write+read pair should land near the paper's 106-108ms.
func TestSmallObjectWriteReadLatencyMatchesPaper(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	const trials = 500
	var total sim.Time
	f.k.Spawn("client", func(p *sim.Proc) {
		payload := make([]byte, 1024)
		for i := 0; i < trials; i++ {
			start := p.Now()
			f.store.Put(p, f.caller, "k", payload)
			if _, err := f.store.Get(p, f.caller, "k"); err != nil {
				t.Errorf("Get: %v", err)
			}
			total += p.Now() - start
		}
	})
	f.k.Run()
	mean := time.Duration(int64(total) / trials)
	if mean < 98*time.Millisecond || mean > 118*time.Millisecond {
		t.Errorf("1KB write+read mean = %v, paper reports 106-108ms", mean)
	}
}

// Calibration: a 100MB GET from a 538Mbps host should take ~2.49s.
func TestBulkFetchMatchesPaperTrainingFetch(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var elapsed sim.Time
	f.k.Spawn("client", func(p *sim.Proc) {
		f.store.PutSized(p, f.caller, "batch", 100e6)
		start := p.Now()
		if _, err := f.store.Get(p, f.caller, "batch"); err != nil {
			t.Errorf("Get: %v", err)
		}
		elapsed = p.Now() - start
	})
	f.k.Run()
	if elapsed < 2300*time.Millisecond || elapsed > 2700*time.Millisecond {
		t.Errorf("100MB fetch = %v, paper reports 2.49s", elapsed)
	}
}

func TestSizedObjectHasNoData(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var got Object
	f.k.Spawn("client", func(p *sim.Proc) {
		f.store.PutSized(p, f.caller, "big", 12345)
		got, _ = f.store.Get(p, f.caller, "big")
	})
	f.k.Run()
	if got.Data != nil || got.Size != 12345 {
		t.Errorf("got %+v, want sized object", got)
	}
}

func TestHeadSkipsTransfer(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var headTime, getTime sim.Time
	f.k.Spawn("client", func(p *sim.Proc) {
		f.store.PutSized(p, f.caller, "big", 500e6)
		s := p.Now()
		if _, err := f.store.Head(p, f.caller, "big"); err != nil {
			t.Errorf("Head: %v", err)
		}
		headTime = p.Now() - s
		s = p.Now()
		_, _ = f.store.Get(p, f.caller, "big")
		getTime = p.Now() - s
	})
	f.k.Run()
	if headTime > 200*time.Millisecond {
		t.Errorf("Head took %v, should skip payload transfer", headTime)
	}
	if getTime < time.Second {
		t.Errorf("Get of 500MB took %v, should include transfer", getTime)
	}
}

func TestDeleteAndList(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var listed []string
	f.k.Spawn("client", func(p *sim.Proc) {
		f.store.Put(p, f.caller, "a/1", []byte("x"))
		f.store.Put(p, f.caller, "a/2", []byte("y"))
		f.store.Put(p, f.caller, "b/1", []byte("z"))
		f.store.Delete(p, f.caller, "a/2")
		f.store.Delete(p, f.caller, "missing") // no error, like S3
		listed = f.store.List(p, f.caller, "a/")
	})
	f.k.Run()
	if len(listed) != 1 || listed[0] != "a/1" {
		t.Errorf("List = %v, want [a/1]", listed)
	}
}

func TestOverwriteVisibleImmediatelyByDefault(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var got Object
	f.k.Spawn("client", func(p *sim.Proc) {
		f.store.Put(p, f.caller, "k", []byte("v1"))
		f.store.Put(p, f.caller, "k", []byte("v2"))
		got, _ = f.store.Get(p, f.caller, "k")
	})
	f.k.Run()
	if string(got.Data) != "v2" {
		t.Errorf("read %q after overwrite, want v2", got.Data)
	}
}

func TestEventualOverwriteCanServeStaleVersion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OverwriteStaleness = 10 * time.Second
	f := newFixture(t, cfg)
	staleSeen, freshSeen := false, false
	f.k.Spawn("client", func(p *sim.Proc) {
		f.store.Put(p, f.caller, "k", []byte("v1"))
		f.store.Put(p, f.caller, "k", []byte("v2"))
		for i := 0; i < 50; i++ {
			got, err := f.store.Get(p, f.caller, "k")
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			switch string(got.Data) {
			case "v1":
				staleSeen = true
			case "v2":
				freshSeen = true
			}
		}
		// Far beyond the window, reads must be fresh.
		p.Sleep(time.Minute)
		got, _ := f.store.Get(p, f.caller, "k")
		if string(got.Data) != "v2" {
			t.Errorf("read %q long after overwrite", got.Data)
		}
	})
	f.k.Run()
	if !staleSeen {
		t.Error("no stale read observed within the staleness window")
	}
	if !freshSeen {
		t.Error("no fresh read observed")
	}
}

func TestNewKeyIsReadAfterWriteEvenWithStaleness(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OverwriteStaleness = 10 * time.Second
	f := newFixture(t, cfg)
	var err error
	f.k.Spawn("client", func(p *sim.Proc) {
		f.store.Put(p, f.caller, "fresh", []byte("v"))
		_, err = f.store.Get(p, f.caller, "fresh")
	})
	f.k.Run()
	if err != nil {
		t.Errorf("new-key read failed: %v (S3 guarantees read-after-write for new PUTs)", err)
	}
}

func TestRequestsAreMetered(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.k.Spawn("client", func(p *sim.Proc) {
		f.store.Put(p, f.caller, "k", []byte("x"))
		_, _ = f.store.Get(p, f.caller, "k")
		_, _ = f.store.Get(p, f.caller, "k")
	})
	f.k.Run()
	if f.meter.Count("s3.put") != 1 {
		t.Errorf("s3.put count = %d, want 1", f.meter.Count("s3.put"))
	}
	if f.meter.Count("s3.get") != 2 {
		t.Errorf("s3.get count = %d, want 2", f.meter.Count("s3.get"))
	}
	if f.meter.Total() <= 0 {
		t.Error("no cost accumulated")
	}
}

func TestPutCopiesCallerBuffer(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var got Object
	f.k.Spawn("client", func(p *sim.Proc) {
		buf := []byte("orig")
		f.store.Put(p, f.caller, "k", buf)
		buf[0] = 'X' // caller mutates after the call
		got, _ = f.store.Get(p, f.caller, "k")
	})
	f.k.Run()
	if string(got.Data) != "orig" {
		t.Errorf("stored data aliased caller buffer: %q", got.Data)
	}
}

func TestConcurrentGettersShareConnectionLimitsIndependently(t *testing.T) {
	// Two concurrent 100MB GETs from one 538Mbps host: the host NIC
	// (67.25 MB/s) is the bottleneck, shared between both transfers, so
	// each sees ~33.6 MB/s and takes ~3s instead of 2.49s.
	f := newFixture(t, DefaultConfig())
	var done [2]sim.Time
	f.k.Spawn("setup", func(p *sim.Proc) {
		f.store.PutSized(p, f.caller, "b0", 100e6)
		f.store.PutSized(p, f.caller, "b1", 100e6)
		for i := 0; i < 2; i++ {
			i := i
			p.Spawn("getter", func(g *sim.Proc) {
				start := g.Now()
				_, _ = f.store.Get(g, f.caller, "b0")
				done[i] = g.Now() - start
			})
		}
	})
	f.k.Run()
	for i, d := range done {
		if d < 2800*time.Millisecond || d > 3400*time.Millisecond {
			t.Errorf("concurrent GET %d took %v, want ~3s (NIC contention)", i, d)
		}
	}
}
