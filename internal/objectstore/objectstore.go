// Package objectstore simulates an S3-style large-object storage service:
// a multi-tenant front end reachable over the network, per-request service
// latency, per-connection streaming throughput, and (optionally) eventual
// consistency for overwrites, as S3 behaved in 2018.
//
// Objects can carry real payload bytes (small objects like serialized
// models) or be "sized" — metadata-only objects standing in for bulk data
// such as the 90 GB training corpus, which it would be pointless to
// materialize. Transfer timing is identical either way.
//
// The endpoint node, request round trip, and metering all live in the
// shared service layer (internal/service); this package owns only what is
// S3-specific: object versions, streaming, range reads, and multipart.
package objectstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/simrand"
)

// ErrNotFound is returned when a key has no (visible) object.
var ErrNotFound = errors.New("objectstore: key not found")

// Object describes a stored blob. Data is nil for sized (virtual) objects.
type Object struct {
	Key     string
	Size    int64
	Data    []byte
	Version int64
}

// Config holds the store's service-level parameters. Calibration provenance
// is documented in EXPERIMENTS.md.
type Config struct {
	// OpLatency is the per-request service time (excluding network
	// propagation and payload streaming). The paper measures a 1KB
	// write+read pair at 106–108 ms from EC2 and Lambda alike, so the
	// default is ~52 ms median per operation.
	OpLatency simrand.Dist

	// PerConnBps caps a single connection's streaming throughput.
	// Calibrated so that a 100 MB GET from Lambda takes ~2.49 s.
	PerConnBps netsim.Bps

	// OverwriteStaleness, when positive, makes overwrites eventually
	// consistent: a read within the window of an overwrite may return
	// the previous version (new-key PUTs are read-after-write, like S3).
	OverwriteStaleness time.Duration

	// NICBps is the front end's aggregate network capacity.
	NICBps netsim.Bps
}

// DefaultConfig returns the calibrated configuration.
func DefaultConfig() Config {
	return Config{
		OpLatency:  simrand.LogNormal{Median: 52 * time.Millisecond, Sigma: 0.08},
		PerConnBps: netsim.MBps(41.2),
		NICBps:     netsim.Gbps(400),
	}
}

// version is one write of a key.
type version struct {
	obj       Object
	writtenAt sim.Time
}

// Store is a simulated object store.
type Store struct {
	fe  *service.Frontend
	cfg Config

	// objects maps key -> version history (latest last). History beyond
	// the staleness window is pruned on write.
	objects map[string][]version
	uploads map[string]*Upload
	nextVer int64
}

// New creates a store attached to the network in rack `rack`.
func New(name string, net *netsim.Network, rack int, rng *simrand.RNG,
	cfg Config, catalog *pricing.Catalog, meter *pricing.Meter) *Store {
	return &Store{
		fe: service.NewFrontend(name, net, rack, rng, cfg.OpLatency,
			cfg.NICBps, catalog, meter),
		cfg:     cfg,
		objects: make(map[string][]version),
		uploads: make(map[string]*Upload),
	}
}

// Node returns the store's network endpoint.
func (s *Store) Node() *netsim.Node { return s.fe.Node() }

// Meter returns the store's cost meter.
func (s *Store) Meter() *pricing.Meter { return s.fe.Meter() }

// stream moves size bytes between caller and store through the caller's NIC,
// the store's NIC and a fresh per-connection throughput limiter.
func (s *Store) stream(p *sim.Proc, caller *netsim.Node, size int64) {
	if size <= 0 {
		return
	}
	fabric := s.fe.Net().Fabric()
	conn := fabric.NewLink(s.fe.Name()+"/conn", s.cfg.PerConnBps)
	fabric.Transfer(p, size, caller.NIC(), s.fe.Node().NIC(), conn)
}

// Put stores data under key, blocking the caller for the upload.
func (s *Store) Put(p *sim.Proc, caller *netsim.Node, key string, data []byte) Object {
	return s.put(p, caller, key, int64(len(data)), append([]byte(nil), data...))
}

// PutSized stores a metadata-only object of the given size; the transfer
// takes as long as a real upload of that many bytes would.
func (s *Store) PutSized(p *sim.Proc, caller *netsim.Node, key string, size int64) Object {
	if size < 0 {
		panic("objectstore: negative size")
	}
	return s.put(p, caller, key, size, nil)
}

func (s *Store) put(p *sim.Proc, caller *netsim.Node, key string, size int64, data []byte) Object {
	s.fe.Charge("s3.put", 1, s.fe.Catalog().S3PutPerRequest)
	s.fe.RoundTrip(p, caller, 0)
	s.stream(p, caller, size)
	s.nextVer++
	obj := Object{Key: key, Size: size, Data: data, Version: s.nextVer}
	hist := s.objects[key]
	// Prune history that can no longer be served.
	if n := len(hist); n > 1 {
		hist = hist[n-1:]
	}
	s.objects[key] = append(hist, version{obj: obj, writtenAt: p.Now()})
	return obj
}

// Get retrieves the object at key, blocking the caller for the download.
// Under eventual overwrite consistency, a recent overwrite may yield the
// previous version.
func (s *Store) Get(p *sim.Proc, caller *netsim.Node, key string) (Object, error) {
	s.fe.Charge("s3.get", 1, s.fe.Catalog().S3GetPerRequest)
	if err := s.fe.RoundTripErr(p, caller, 0); err != nil {
		return Object{}, err
	}
	obj, ok := s.visible(p.Now(), key)
	if !ok {
		return Object{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	s.stream(p, caller, obj.Size)
	return obj, nil
}

// visible resolves which version of key a read started at time now sees.
func (s *Store) visible(now sim.Time, key string) (Object, bool) {
	hist := s.objects[key]
	if len(hist) == 0 {
		return Object{}, false
	}
	latest := hist[len(hist)-1]
	if s.cfg.OverwriteStaleness > 0 && len(hist) > 1 &&
		now-latest.writtenAt < s.cfg.OverwriteStaleness {
		// Overwrite still propagating: serve the prior version with
		// probability proportional to remaining window.
		remain := float64(s.cfg.OverwriteStaleness-(now-latest.writtenAt)) /
			float64(s.cfg.OverwriteStaleness)
		if s.fe.RNG().Float64() < remain {
			return hist[len(hist)-2].obj, true
		}
	}
	return latest.obj, true
}

// Head returns object metadata without transferring the payload.
func (s *Store) Head(p *sim.Proc, caller *netsim.Node, key string) (Object, error) {
	s.fe.Charge("s3.get", 1, s.fe.Catalog().S3GetPerRequest)
	if err := s.fe.RoundTripErr(p, caller, 0); err != nil {
		return Object{}, err
	}
	obj, ok := s.visible(p.Now(), key)
	if !ok {
		return Object{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	obj.Data = nil
	return obj, nil
}

// Delete removes key. Deleting a missing key is not an error (like S3).
func (s *Store) Delete(p *sim.Proc, caller *netsim.Node, key string) {
	s.fe.Charge("s3.put", 1, s.fe.Catalog().S3PutPerRequest)
	s.fe.RoundTrip(p, caller, 0)
	delete(s.objects, key)
}

// List returns the keys with the given prefix, sorted, without payloads.
func (s *Store) List(p *sim.Proc, caller *netsim.Node, prefix string) []string {
	s.fe.Charge("s3.get", 1, s.fe.Catalog().S3GetPerRequest)
	s.fe.RoundTrip(p, caller, 0)
	var keys []string
	for k := range s.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Len reports the number of stored keys (test hook; no simulated latency).
func (s *Store) Len() int { return len(s.objects) }
