package objectstore

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestGetRangeSlicesData(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var got Object
	var err error
	f.k.Spawn("c", func(p *sim.Proc) {
		f.store.Put(p, f.caller, "k", []byte("hello world"))
		got, err = f.store.GetRange(p, f.caller, "k", 6, 5)
	})
	f.k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data) != "world" || got.Size != 5 {
		t.Errorf("range = %+v", got)
	}
}

func TestGetRangeClampsLength(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var got Object
	f.k.Spawn("c", func(p *sim.Proc) {
		f.store.Put(p, f.caller, "k", []byte("abc"))
		got, _ = f.store.GetRange(p, f.caller, "k", 1, 100)
	})
	f.k.Run()
	if string(got.Data) != "bc" {
		t.Errorf("clamped range = %q", got.Data)
	}
}

func TestGetRangeErrors(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var badOffset, badLen, missing, beyond error
	f.k.Spawn("c", func(p *sim.Proc) {
		f.store.Put(p, f.caller, "k", []byte("abc"))
		_, badOffset = f.store.GetRange(p, f.caller, "k", -1, 1)
		_, badLen = f.store.GetRange(p, f.caller, "k", 0, 0)
		_, missing = f.store.GetRange(p, f.caller, "nope", 0, 1)
		_, beyond = f.store.GetRange(p, f.caller, "k", 10, 1)
	})
	f.k.Run()
	if !errors.Is(badOffset, ErrBadRange) || !errors.Is(badLen, ErrBadRange) ||
		!errors.Is(beyond, ErrBadRange) {
		t.Errorf("range errors: %v, %v, %v", badOffset, badLen, beyond)
	}
	if !errors.Is(missing, ErrNotFound) {
		t.Errorf("missing key: %v", missing)
	}
}

func TestRangeReadTransfersOnlySlice(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var full, slice sim.Time
	f.k.Spawn("c", func(p *sim.Proc) {
		f.store.PutSized(p, f.caller, "big", 100e6)
		start := p.Now()
		f.store.Get(p, f.caller, "big")
		full = p.Now() - start
		start = p.Now()
		f.store.GetRange(p, f.caller, "big", 0, 10e6)
		slice = p.Now() - start
	})
	f.k.Run()
	// 10MB should take ~1/10th the transfer time plus fixed overhead.
	if slice > full/3 {
		t.Errorf("10%% range read took %v vs full %v", slice, full)
	}
}

func TestMultipartUploadAssemblesObject(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var obj Object
	var err error
	f.k.Spawn("c", func(p *sim.Proc) {
		u := f.store.CreateUpload(p, f.caller, "assembled")
		for i := 1; i <= 3; i++ {
			if e := f.store.UploadPart(p, f.caller, u, i, 5e6); e != nil {
				t.Errorf("part %d: %v", i, e)
				return
			}
		}
		obj, err = f.store.CompleteUpload(p, f.caller, u)
	})
	f.k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if obj.Size != 15e6 {
		t.Errorf("assembled size = %d, want 15MB", obj.Size)
	}
	var got Object
	f.k.Spawn("reader", func(p *sim.Proc) {
		got, _ = f.store.Get(p, f.caller, "assembled")
	})
	f.k.Run()
	if got.Size != 15e6 {
		t.Errorf("stored object size = %d", got.Size)
	}
}

func TestMultipartPartOrdering(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var err error
	f.k.Spawn("c", func(p *sim.Proc) {
		u := f.store.CreateUpload(p, f.caller, "k")
		err = f.store.UploadPart(p, f.caller, u, 2, 1e6) // should be 1
	})
	f.k.Run()
	if !errors.Is(err, ErrPartOutOfOrder) {
		t.Errorf("err = %v", err)
	}
}

func TestMultipartLifecycleErrors(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var afterComplete, afterAbort, doubleComplete error
	f.k.Spawn("c", func(p *sim.Proc) {
		u := f.store.CreateUpload(p, f.caller, "k")
		f.store.UploadPart(p, f.caller, u, 1, 1e6)
		if _, err := f.store.CompleteUpload(p, f.caller, u); err != nil {
			t.Errorf("complete: %v", err)
			return
		}
		afterComplete = f.store.UploadPart(p, f.caller, u, 2, 1e6)
		_, doubleComplete = f.store.CompleteUpload(p, f.caller, u)

		u2 := f.store.CreateUpload(p, f.caller, "k2")
		if err := f.store.AbortUpload(p, f.caller, u2); err != nil {
			t.Errorf("abort: %v", err)
			return
		}
		afterAbort = f.store.UploadPart(p, f.caller, u2, 1, 1e6)
	})
	f.k.Run()
	for name, err := range map[string]error{
		"part after complete": afterComplete,
		"double complete":     doubleComplete,
		"part after abort":    afterAbort,
	} {
		if err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestMultipartParallelPartsShareConnectionLimits(t *testing.T) {
	// Two sequential 40MB parts vs the same bytes in one Put: multipart
	// pays extra per-request overhead but the same streaming time.
	f := newFixture(t, DefaultConfig())
	var multi, single sim.Time
	f.k.Spawn("c", func(p *sim.Proc) {
		u := f.store.CreateUpload(p, f.caller, "m")
		start := p.Now()
		f.store.UploadPart(p, f.caller, u, 1, 40e6)
		f.store.UploadPart(p, f.caller, u, 2, 40e6)
		f.store.CompleteUpload(p, f.caller, u)
		multi = p.Now() - start
		start = p.Now()
		f.store.PutSized(p, f.caller, "s", 80e6)
		single = p.Now() - start
	})
	f.k.Run()
	overhead := multi - single
	if overhead < 50*time.Millisecond || overhead > 500*time.Millisecond {
		t.Errorf("multipart overhead = %v, want a few request round trips", overhead)
	}
}
