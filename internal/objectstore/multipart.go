package objectstore

// Range reads and multipart uploads, mirroring S3's GetObject Range header
// and the multipart-upload protocol. Range reads matter to the paper's
// training loop (sharding a large object instead of whole-object fetches);
// multipart is how anything larger than one connection's worth of patience
// gets uploaded in the first place.

import (
	"errors"
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Range-read and multipart errors.
var (
	ErrBadRange        = errors.New("objectstore: invalid byte range")
	ErrUploadNotFound  = errors.New("objectstore: no such multipart upload")
	ErrPartOutOfOrder  = errors.New("objectstore: parts must be numbered 1..n")
	ErrUploadCompleted = errors.New("objectstore: upload already completed")
)

// GetRange retrieves `length` bytes starting at `offset`, transferring only
// that slice. For payload-bearing objects the returned Object carries the
// sliced data; for sized objects only Size is set.
func (s *Store) GetRange(p *sim.Proc, caller *netsim.Node, key string, offset, length int64) (Object, error) {
	if offset < 0 || length <= 0 {
		return Object{}, ErrBadRange
	}
	s.fe.Charge("s3.get", 1, s.fe.Catalog().S3GetPerRequest)
	if err := s.fe.RoundTripErr(p, caller, 0); err != nil {
		return Object{}, err
	}
	obj, ok := s.visible(p.Now(), key)
	if !ok {
		return Object{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if offset >= obj.Size {
		return Object{}, fmt.Errorf("%w: offset %d beyond size %d", ErrBadRange, offset, obj.Size)
	}
	if offset+length > obj.Size {
		length = obj.Size - offset
	}
	s.stream(p, caller, length)
	out := Object{Key: obj.Key, Size: length, Version: obj.Version}
	if obj.Data != nil {
		out.Data = append([]byte(nil), obj.Data[offset:offset+length]...)
	}
	return out, nil
}

// Upload is an in-progress multipart upload.
type Upload struct {
	store     *Store
	key       string
	id        string
	parts     []int64 // sizes by part number - 1
	completed bool
}

// ID returns the upload identifier.
func (u *Upload) ID() string { return u.id }

// CreateUpload starts a multipart upload for key.
func (s *Store) CreateUpload(p *sim.Proc, caller *netsim.Node, key string) *Upload {
	s.fe.Charge("s3.put", 1, s.fe.Catalog().S3PutPerRequest)
	s.fe.RoundTrip(p, caller, 0)
	s.nextVer++
	u := &Upload{store: s, key: key, id: fmt.Sprintf("upload-%d", s.nextVer)}
	s.uploads[u.id] = u
	return u
}

// UploadPart transfers one part (parts are numbered from 1, in order; S3
// allows out-of-order parts but the simulation keeps the common sequential
// case strict to catch driver bugs).
func (s *Store) UploadPart(p *sim.Proc, caller *netsim.Node, u *Upload, partNum int, size int64) error {
	if s.uploads[u.id] != u {
		return ErrUploadNotFound
	}
	if u.completed {
		return ErrUploadCompleted
	}
	if partNum != len(u.parts)+1 {
		return fmt.Errorf("%w: got part %d, want %d", ErrPartOutOfOrder, partNum, len(u.parts)+1)
	}
	s.fe.Charge("s3.put", 1, s.fe.Catalog().S3PutPerRequest)
	if err := s.fe.RoundTripErr(p, caller, 0); err != nil {
		return err
	}
	s.stream(p, caller, size)
	u.parts = append(u.parts, size)
	return nil
}

// CompleteUpload assembles the parts into a sized object and ends the
// upload. Completion is metadata-only (no data transfer), like S3.
func (s *Store) CompleteUpload(p *sim.Proc, caller *netsim.Node, u *Upload) (Object, error) {
	if s.uploads[u.id] != u {
		return Object{}, ErrUploadNotFound
	}
	if u.completed {
		return Object{}, ErrUploadCompleted
	}
	s.fe.Charge("s3.put", 1, s.fe.Catalog().S3PutPerRequest)
	if err := s.fe.RoundTripErr(p, caller, 0); err != nil {
		return Object{}, err
	}
	var total int64
	for _, sz := range u.parts {
		total += sz
	}
	u.completed = true
	delete(s.uploads, u.id)
	s.nextVer++
	obj := Object{Key: u.key, Size: total, Version: s.nextVer}
	hist := s.objects[u.key]
	if n := len(hist); n > 1 {
		hist = hist[n-1:]
	}
	s.objects[u.key] = append(hist, version{obj: obj, writtenAt: p.Now()})
	return obj, nil
}

// AbortUpload discards an in-progress upload.
func (s *Store) AbortUpload(p *sim.Proc, caller *netsim.Node, u *Upload) error {
	if s.uploads[u.id] != u {
		return ErrUploadNotFound
	}
	s.fe.Charge("s3.put", 1, s.fe.Catalog().S3PutPerRequest)
	if err := s.fe.RoundTripErr(p, caller, 0); err != nil {
		return err
	}
	u.completed = true
	delete(s.uploads, u.id)
	return nil
}
