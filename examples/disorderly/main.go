// Disorderly: §3.2's "Can Limitations Set Us Free?" as a runnable demo.
// Ten stateless functions race to count 200 events through *eventually
// consistent* storage, twice: once with a naive read-modify-write integer
// (which silently loses updates), once with a G-Counter CRDT merged
// through the same storage (which converges exactly) — the paper's point
// that disorderly, coordination-tolerant designs are the way to live with
// FaaS's loose consistency.
//
//	go run ./examples/disorderly
package main

import (
	"errors"
	"flag"
	"fmt"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/crdt"
	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/sim"
)

const (
	workers = 10
	events  = 20 // per worker
)

var seed = flag.Uint64("seed", 41, "simulation seed (the naive run; the CRDT run uses seed+1)")

func main() {
	flag.Parse()
	fmt.Printf("%d functions each record %d events via eventually consistent storage\n\n",
		workers, events)
	naive := runNaive()
	exact := runCRDT()
	want := workers * events
	fmt.Printf("\nnaive integer:   %3d / %d  (unconditional read-modify-write loses races)\n", naive, want)
	fmt.Printf("G-Counter CRDT:  %3d / %d  (merge is commutative, associative, idempotent)\n", exact, want)
}

// runNaive: read an integer (eventually consistent), add one, write it
// back unconditionally — the pattern sequential programmers reach for.
func runNaive() int64 {
	cloud, table := setup(*seed)
	defer cloud.Close()
	var wg sim.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		node := cloud.Net.NewNode(fmt.Sprintf("fn-%d", w), 1, netsim.Mbps(538))
		wg.Add(1)
		cloud.K.Spawn("worker", func(p *sim.Proc) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				var cur int64
				if item, err := table.Get(p, node, "count", false); err == nil {
					cur, _ = strconv.ParseInt(string(item.Value), 10, 64)
				}
				table.Put(p, node, "count", []byte(strconv.FormatInt(cur+1, 10)))
			}
		})
	}
	return finish(cloud, table, &wg, func(v []byte) int64 {
		n, _ := strconv.ParseInt(string(v), 10, 64)
		return n
	})
}

// runCRDT: the same traffic, but the shared state is a G-Counter and
// writes go through compare-and-swap with merge-on-retry.
func runCRDT() int64 {
	cloud, table := setup(*seed + 1)
	defer cloud.Close()
	var wg sim.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		node := cloud.Net.NewNode(fmt.Sprintf("fn-%d", w), 1, netsim.Mbps(538))
		replica := fmt.Sprintf("r%d", w)
		wg.Add(1)
		cloud.K.Spawn("worker", func(p *sim.Proc) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				for {
					counter := crdt.NewGCounter()
					var ver int64
					item, err := table.Get(p, node, "count", false)
					if err == nil {
						if c, derr := crdt.UnmarshalGCounter(item.Value); derr == nil {
							counter = c
						}
						ver = item.Version
					} else if !errors.Is(err, kvstore.ErrNotFound) {
						return
					}
					counter.Inc(replica, 1)
					if _, err := table.ConditionalPut(p, node, "count", crdt.Marshal(counter), ver); err == nil {
						break
					}
					p.Sleep(time.Duration(5+w) * time.Millisecond)
				}
			}
		})
	}
	return finish(cloud, table, &wg, func(v []byte) int64 {
		c, err := crdt.UnmarshalGCounter(v)
		if err != nil {
			return -1
		}
		return c.Value()
	})
}

func setup(seed uint64) (*core.Cloud, *kvstore.Store) {
	cloud := core.NewCloud(seed)
	return cloud, cloud.DDB
}

func finish(cloud *core.Cloud, table *kvstore.Store, wg *sim.WaitGroup,
	decode func([]byte) int64) int64 {
	var total int64 = -1
	cloud.K.Spawn("reader", func(p *sim.Proc) {
		wg.Wait(p)
		p.Sleep(time.Second)
		node := cloud.Net.NewNode("final-reader", 0, netsim.Gbps(10))
		if item, err := table.Get(p, node, "count", true); err == nil {
			total = decode(item.Value)
		}
	})
	cloud.K.RunUntil(sim.Time(time.Hour))
	return total
}
