// Signup: the §2 function-composition pattern end to end — an account-
// creation pipeline in the style of the paper's Autodesk case study, each
// step its own Lambda function fed by its own queue with state parked in
// S3, next to the same logic run as a single process.
//
//	go run ./examples/signup
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/faas"
	"repro/internal/sim"
	"repro/internal/workflow"
)

func steps() []workflow.Step {
	names := []string{"validate", "dedupe", "create", "provision", "permissions", "notify"}
	out := make([]workflow.Step, len(names))
	for i, n := range names {
		n := n
		out[i] = workflow.Step{
			Name:        n,
			ReadsState:  i > 0,
			WritesState: true,
			Work: func(ctx *faas.Ctx, d []byte) ([]byte, error) {
				ctx.Compute(int64(len(d)) + 512)
				return append(d, []byte("→"+n)...), nil
			},
		}
	}
	return out
}

var seed = flag.Uint64("seed", 55, "simulation seed")

func main() {
	flag.Parse()
	cloud := core.NewCloud(*seed)
	defer cloud.Close()

	pl := workflow.New("signup", cloud.Lambda, cloud.SQS, cloud.S3, steps())
	if err := pl.Deploy(cloud.K); err != nil {
		panic(err)
	}

	client := cloud.ClientNode("frontend")
	done := false
	cloud.K.Spawn("driver", func(p *sim.Proc) {
		fmt.Printf("signing up 5 users through a %d-step FaaS pipeline:\n\n", pl.Steps())
		for i := 0; i < 5; i++ {
			user := fmt.Sprintf("user-%c", 'a'+i)
			pr, err := pl.Submit(p, client, []byte(user))
			if err != nil {
				panic(err)
			}
			res := pr.Get(p)
			fmt.Printf("  %-7s %-9v %s\n", user,
				res.Latency.Round(10*time.Millisecond), trail(string(res.Output)))
		}
		pl.Stop()

		// The same logic, one process, local state.
		inst := cloud.EC2.Launch(p, compute.M5Large, core.ClientRack)
		start := p.Now()
		data := []byte("user-x")
		for i, st := range steps() {
			key := fmt.Sprintf("st-%d", i)
			if st.ReadsState {
				inst.Volume().Read(p, key, int64(len(data)))
			}
			inst.Compute(p, int64(len(data))+512)
			inst.Volume().Write(p, key, int64(len(data)))
		}
		mono := time.Duration(p.Now() - start)
		fmt.Printf("\nsame steps in one process: %v — the pipeline's latency is pure\n", mono.Round(time.Millisecond))
		fmt.Printf("queue/invoke/state overhead (the paper's Autodesk signups averaged ~10min)\n")
		done = true
	})
	for t := sim.Time(0); !done; t += sim.Time(10 * time.Second) {
		cloud.K.RunUntil(t)
	}
}

func trail(s string) string {
	if i := strings.Index(s, "→"); i >= 0 {
		return "completed " + s[i:]
	}
	return s
}
