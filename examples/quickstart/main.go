// Quickstart: assemble a simulated cloud, register a function, invoke it,
// and read the bill — the smallest end-to-end tour of the library.
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faas"
	"repro/internal/sim"
)

var seed = flag.Uint64("seed", 42, "simulation seed")

func main() {
	flag.Parse()
	// A deterministic cloud: same seed, same results, every run.
	cloud := core.NewCloud(*seed)
	defer cloud.Close()

	// Register a function that shouts its payload back.
	err := cloud.Lambda.Register(faas.Function{
		Name:     "greet",
		MemoryMB: 256,
		Timeout:  30 * time.Second,
		Handler: func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
			ctx.Compute(int64(len(payload))) // pretend this is work
			return append([]byte("HELLO, "), payload...), nil
		},
	})
	if err != nil {
		panic(err)
	}

	// Drive the simulation from a process; virtual time only advances
	// inside the kernel.
	cloud.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			start := p.Now()
			resp, rep, err := cloud.Lambda.Invoke(p, "greet", []byte("world"))
			if err != nil {
				panic(err)
			}
			fmt.Printf("call %d: %q  latency=%-9v cold=%-5v billed=%v\n",
				i+1, resp, time.Duration(p.Now()-start).Round(time.Millisecond),
				rep.ColdStart, rep.BilledDuration)
		}
	})
	cloud.K.Run()

	fmt.Println("\nthe meter saw:")
	for _, line := range cloud.Meter.Lines() {
		fmt.Printf("  %-16s count=%-4d cost=%v\n", line.Item, line.Count, line.Cost)
	}
	fmt.Printf("total: %v (virtual time elapsed: %v)\n", cloud.Meter.Total(), cloud.K.Now())
}
