// Dataflow: §4's fluid code-and-data placement in action. A filter-heavy
// analytics job over 64 partitions runs three times — planner's choice,
// forced ship-code-to-data, forced ship-data-to-code — showing the planner
// picking the placement FaaS architecturally forbids, and an autoscaled
// agent pool serving the query results.
//
//	go run ./examples/dataflow
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/future"
	"repro/internal/sim"
)

var seed = flag.Uint64("seed", 77, "simulation seed")

func main() {
	flag.Parse()
	cloud := core.NewCloud(*seed)
	defer cloud.Close()
	pf := future.New(cloud.Net, cloud.Mesh, cloud.RNG.Fork(),
		future.DefaultConfig(), cloud.Catalog, cloud.Meter)

	ds := pf.CreateDataSet("clickstream", 5)
	var parts []string
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("shard-%02d", i)
		ds.AddExtent(key, 256e6) // 16GB total
		parts = append(parts, key)
	}
	job := &dataflow.Job{
		Input:      ds,
		Partitions: parts,
		Ops: []dataflow.Op{
			{Name: "parse", Selectivity: 1.0, CostMBps: 3000},
			{Name: "filter-bots", Selectivity: 0.05, CostMBps: 2500},
			{Name: "sessionize", Selectivity: 0.5, CostMBps: 1200},
		},
	}

	env := dataflow.DefaultEnv()
	plan, costs, err := env.Plan(job)
	if err != nil {
		panic(err)
	}
	fmt.Printf("64 x 256MB partitions through parse|filter|sessionize\n\n")
	fmt.Printf("planner: %v per-partition predictions: code->data %.3fs, data->code %.3fs\n",
		plan.Placement, costs[dataflow.ShipCodeToData], costs[dataflow.ShipDataToCode])

	ex := dataflow.NewExecutor(pf, env)
	done := false
	cloud.K.Spawn("driver", func(p *sim.Proc) {
		run := func(pl *dataflow.Plan, label string) {
			res, err := ex.Execute(p, pl, 8)
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %-22s %-9v output %.1fMB\n", label,
				res.Elapsed.Round(10*time.Millisecond), float64(res.OutputBytes)/1e6)
		}
		run(plan, "planner ("+plan.Placement.String()+"):")
		run(&dataflow.Plan{Job: job, Placement: dataflow.ShipDataToCode}, "forced data->code:")
		run(&dataflow.Plan{Job: job, Placement: dataflow.ShipCodeToData}, "forced code->data:")
		done = true
	})
	for t := sim.Time(0); !done; t += sim.Time(time.Minute) {
		cloud.K.RunUntil(t)
	}
	fmt.Printf("\nagent-seconds billed: %v — pay-per-use survives the placement fix\n",
		cloud.Meter.Cost("agent.gbsec"))
}
