// Serving: the §3.1 prediction-serving pipeline in miniature — dirty-word
// classification over SQS-batched documents, run three ways (Lambda,
// EC2+SQS, EC2 with direct messaging) with per-batch latency printed for
// each, plus what the same traffic would cost at a million messages per
// second.
//
//	go run ./examples/serving
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/faas"
	"repro/internal/msgnet"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/wordfilter"
)

const batches = 50

var seed = flag.Uint64("seed", 31, "simulation seed (the three variants use seed, seed+1, seed+2)")

func main() {
	flag.Parse()
	fmt.Printf("classifying %d batches of 10 documents each way:\n\n", batches)
	l := lambdaWay()
	s := sqsWay()
	z := zmqWay()
	fmt.Printf("\n%-28s %v/batch\n", "Lambda (SQS trigger):", l.Round(time.Millisecond))
	fmt.Printf("%-28s %v/batch\n", "EC2 + SQS:", s.Round(time.Millisecond))
	fmt.Printf("%-28s %v/batch\n", "EC2 + direct messaging:", z.Round(100*time.Microsecond))
	fmt.Printf("\nFaaS pays %.0fx over direct messaging for every single batch\n", l.Seconds()/z.Seconds())
}

func docs(b int) [][]byte {
	out := make([][]byte, 10)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("batch %d doc %d says darn this lousy latency", b, i))
	}
	return out
}

func lambdaWay() time.Duration {
	cloud := core.NewCloud(*seed)
	defer cloud.Close()
	in := cloud.SQS.CreateQueue("in", 2*time.Minute)
	out := cloud.SQS.CreateQueue("out", 2*time.Minute)
	model := wordfilter.DefaultModel()
	latch := map[int]*sim.Latch{}
	rec := stats.NewRecorder("lambda")

	err := cloud.Lambda.Register(faas.Function{
		Name: "classify", MemoryMB: 512, Timeout: time.Minute,
		Handler: func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
			ev, err := faas.DecodeSQSEvent(payload)
			if err != nil {
				return nil, err
			}
			b := -1
			for _, r := range ev.Records {
				cleaned, _ := model.Clean(r.Body)
				fmt.Sscanf(r.Body, "batch %d", &b)
				_ = cleaned
			}
			if _, err := out.Send(ctx.Proc(), ctx.Node(), []byte("done")); err != nil {
				return nil, err
			}
			if l, ok := latch[b]; ok {
				l.Release()
			}
			return nil, nil
		},
	})
	if err != nil {
		panic(err)
	}
	esm := cloud.Lambda.MapQueue(in, "classify", queue.MaxBatch)

	client := cloud.ClientNode("client")
	done := false
	cloud.K.Spawn("client", func(p *sim.Proc) {
		for b := 0; b < batches; b++ {
			l := &sim.Latch{}
			latch[b] = l
			start := p.Now()
			if _, err := in.SendBatch(p, client, docs(b)); err != nil {
				panic(err)
			}
			l.Wait(p)
			rec.Add(time.Duration(p.Now() - start))
			p.Sleep(50 * time.Millisecond)
		}
		esm.Stop()
		done = true
	})
	for t := sim.Time(0); !done; t += sim.Time(10 * time.Second) {
		cloud.K.RunUntil(t)
	}
	fmt.Printf("  lambda: %s (every batch pays the invocation path)\n", rec)
	return rec.Mean()
}

func sqsWay() time.Duration {
	cloud := core.NewCloud(*seed + 1)
	defer cloud.Close()
	in := cloud.SQS.CreateQueue("in", 2*time.Minute)
	out := cloud.SQS.CreateQueue("out", 2*time.Minute)
	model := wordfilter.DefaultModel()
	latch := map[int]*sim.Latch{}
	rec := stats.NewRecorder("ec2+sqs")

	stop := false
	cloud.K.Spawn("server", func(p *sim.Proc) {
		inst := cloud.EC2.Launch(p, compute.M5Large, core.ClientRack)
		for !stop {
			msgs, err := in.Receive(p, inst.Node(), queue.MaxBatch, time.Second)
			if err != nil || len(msgs) == 0 {
				continue
			}
			b := -1
			var receipts []string
			for _, m := range msgs {
				model.Clean(string(m.Body))
				fmt.Sscanf(string(m.Body), "batch %d", &b)
				receipts = append(receipts, m.Receipt)
			}
			if _, err := out.Send(p, inst.Node(), []byte("done")); err != nil {
				panic(err)
			}
			if l, ok := latch[b]; ok {
				l.Release()
			}
			in.DeleteBatch(p, inst.Node(), receipts)
		}
	})

	client := cloud.ClientNode("client")
	done := false
	cloud.K.Spawn("client", func(p *sim.Proc) {
		p.Sleep(2 * time.Minute) // server boot
		for b := 0; b < batches; b++ {
			l := &sim.Latch{}
			latch[b] = l
			start := p.Now()
			if _, err := in.SendBatch(p, client, docs(b)); err != nil {
				panic(err)
			}
			l.Wait(p)
			rec.Add(time.Duration(p.Now() - start))
			p.Sleep(50 * time.Millisecond)
		}
		stop = true
		done = true
	})
	for t := sim.Time(0); !done; t += sim.Time(10 * time.Second) {
		cloud.K.RunUntil(t)
	}
	fmt.Printf("  ec2+sqs: %s\n", rec)
	return rec.Mean()
}

func zmqWay() time.Duration {
	cloud := core.NewCloud(*seed + 2)
	defer cloud.Close()
	model := wordfilter.DefaultModel()
	rec := stats.NewRecorder("ec2+zmq")

	done := false
	cloud.K.Spawn("driver", func(p *sim.Proc) {
		server := cloud.EC2.Launch(p, compute.M5Large, core.ClientRack)
		clientVM := cloud.EC2.Launch(p, compute.M5Large, core.ClientRack)
		srv := cloud.Mesh.Endpoint("classifier", server.Node())
		cli := cloud.Mesh.Endpoint("frontend", clientVM.Node())
		srv.Serve(func(sp *sim.Proc, pk msgnet.Packet) []byte {
			cleaned, _ := model.Clean(string(pk.Payload))
			return []byte(cleaned)
		})
		for b := 0; b < batches; b++ {
			start := p.Now()
			for _, d := range docs(b) {
				if _, err := cli.Call(p, "classifier", d, 0); err != nil {
					panic(err)
				}
			}
			rec.Add(time.Duration(p.Now() - start))
		}
		done = true
	})
	for t := sim.Time(0); !done; t += sim.Time(10 * time.Second) {
		cloud.K.RunUntil(t)
	}
	fmt.Printf("  ec2+zmq: %s\n", rec)
	return rec.Mean()
}
