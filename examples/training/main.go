// Training: a scaled-down rendition of the paper's §3.1 model-training
// case study, with a real MLP learning real (synthetic) review data while
// the simulated platforms account for the data-shipping costs. One epoch
// over a 2GB corpus is enough to see the Lambda-vs-EC2 gap open up.
//
//	go run ./examples/training
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/faas"
	"repro/internal/mlp"
	"repro/internal/reviews"
	"repro/internal/sim"
)

const (
	corpusBytes = int64(2e9) // scaled-down corpus: 20 batches of 100MB
	batchBytes  = int64(100e6)
	vocab       = 128 // scaled-down feature width for the real model
)

var seed = flag.Uint64("seed", 3, "simulation seed (the EC2 run uses seed+1)")

func main() {
	flag.Parse()
	batches := int(corpusBytes / batchBytes)
	fmt.Printf("one epoch over %d batches of 100MB, real %d-feature MLP in the loop\n\n", batches, vocab)
	lambdaTime, l0, l1 := onLambda(batches)
	ec2Time, e0, e1 := onEC2(batches)
	fmt.Printf("\nLambda: %-10v (holdout MSE %.3f -> %.3f)\n", lambdaTime.Round(time.Second), l0, l1)
	fmt.Printf("EC2:    %-10v (holdout MSE %.3f -> %.3f)\n", ec2Time.Round(time.Second), e0, e1)
	fmt.Printf("the data-shipping architecture costs %.1fx in wall clock\n",
		lambdaTime.Seconds()/ec2Time.Seconds())
}

// trainer couples the real model with whatever platform pays for the I/O.
type trainer struct {
	gen *reviews.Generator
	net *mlp.Network
	opt *mlp.Adam
	hX  [][]float64
	hY  [][]float64
}

func newTrainer() *trainer {
	gen := reviews.NewGenerator(11, vocab)
	hX, hY := gen.Batch(128)
	return &trainer{
		gen: gen,
		net: mlp.New(mlp.Config{Input: vocab, Hidden: []int{10, 10}, Output: 1, Seed: 5}),
		opt: mlp.NewAdam(),
		hX:  hX, hY: hY,
	}
}

func (tr *trainer) step() {
	// Each simulated 100MB batch stands in for many real optimizer steps;
	// run a handful so the example visibly learns.
	for i := 0; i < 25; i++ {
		X, Y := tr.gen.Batch(32)
		tr.net.TrainBatch(tr.opt, X, Y)
	}
}

func (tr *trainer) holdout() float64 { return tr.net.Loss(tr.hX, tr.hY) }

func onLambda(batches int) (time.Duration, float64, float64) {
	cloud := core.NewCloud(*seed)
	defer cloud.Close()
	tr := newTrainer()
	before := tr.holdout()
	staging := cloud.ClientNode("staging")

	err := cloud.Lambda.Register(faas.Function{
		Name: "train", MemoryMB: 640, Timeout: 15 * time.Minute,
		Handler: func(ctx *faas.Ctx, _ []byte) ([]byte, error) {
			p, node := ctx.Proc(), ctx.Node()
			for i := 0; i < batches; i++ {
				if _, err := cloud.S3.Get(p, node, reviews.BatchKey(i)); err != nil {
					return nil, err
				}
				ctx.Compute(batchBytes)
				tr.step()
			}
			return nil, nil
		},
	})
	if err != nil {
		panic(err)
	}

	var elapsed time.Duration
	cloud.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < batches; i++ {
			cloud.S3.PutSized(p, staging, reviews.BatchKey(i), batchBytes)
		}
		start := p.Now()
		if _, _, err := cloud.Lambda.Invoke(p, "train", nil); err != nil {
			panic(err)
		}
		elapsed = time.Duration(p.Now() - start)
	})
	cloud.K.RunUntil(sim.Time(time.Hour))
	fmt.Printf("Lambda (640MB): every batch fetched over the network from S3\n")
	return elapsed, before, tr.holdout()
}

func onEC2(batches int) (time.Duration, float64, float64) {
	cloud := core.NewCloud(*seed + 1)
	defer cloud.Close()
	tr := newTrainer()
	before := tr.holdout()

	var elapsed time.Duration
	cloud.K.Spawn("driver", func(p *sim.Proc) {
		inst := cloud.EC2.Launch(p, compute.M4Large, core.ClientRack)
		for i := 0; i < batches; i++ {
			inst.Volume().Warm(reviews.BatchKey(i)) // data staged locally
		}
		start := p.Now()
		for i := 0; i < batches; i++ {
			if err := inst.Volume().Read(p, reviews.BatchKey(i), batchBytes); err != nil {
				panic(err)
			}
			if err := inst.Compute(p, batchBytes); err != nil {
				panic(err)
			}
			tr.step()
		}
		elapsed = time.Duration(p.Now() - start)
	})
	cloud.K.RunUntil(sim.Time(time.Hour))
	fmt.Printf("EC2 m4.large: batches read from the local page cache\n")
	return elapsed, before, tr.holdout()
}
