// Imageresize: the paper's §2 "easy case" — embarrassingly parallel fan-out
// (the Seattle Times thumbnail workload). One hundred independent resize
// jobs autoscale across containers; the example shows where FaaS genuinely
// shines, and also surfaces the VM packing that will matter once jobs do
// I/O: 100 concurrent containers share five 538 Mbps VM NICs.
//
//	go run ./examples/imageresize
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faas"
	"repro/internal/sim"
	"repro/internal/stats"
)

var seed = flag.Uint64("seed", 7, "simulation seed")

func main() {
	flag.Parse()
	cloud := core.NewCloud(*seed)
	defer cloud.Close()

	// Stage 100 "images" (sized objects) in the object store.
	const images = 100
	staged := false
	staging := cloud.ClientNode("staging")
	cloud.K.Spawn("staging", func(p *sim.Proc) {
		for i := 0; i < images; i++ {
			cloud.S3.PutSized(p, staging, key(i), 4e6) // 4MB originals
		}
		staged = true
	})

	err := cloud.Lambda.Register(faas.Function{
		Name:     "resize",
		MemoryMB: 512,
		Timeout:  time.Minute,
		Handler: func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
			p, node := ctx.Proc(), ctx.Node()
			obj, err := cloud.S3.Get(p, node, string(payload))
			if err != nil {
				return nil, err
			}
			ctx.Compute(obj.Size)                                     // decode + scale
			cloud.S3.PutSized(p, node, string(payload)+"/thumb", 4e4) // 40KB thumbnail
			return nil, nil
		},
	})
	if err != nil {
		panic(err)
	}

	lat := stats.NewRecorder("resize")
	var wg sim.WaitGroup
	done := false
	cloud.K.Spawn("fanout", func(p *sim.Proc) {
		for !staged {
			p.Sleep(time.Second)
		}
		start := p.Now()
		for i := 0; i < images; i++ {
			i := i
			wg.Add(1)
			p.Spawn("job", func(jp *sim.Proc) {
				defer wg.Done()
				s := jp.Now()
				if _, _, err := cloud.Lambda.Invoke(jp, "resize", []byte(key(i))); err != nil {
					panic(err)
				}
				lat.Add(time.Duration(jp.Now() - s))
			})
		}
		wg.Wait(p)
		fmt.Printf("%d images resized in %v of virtual time (sequential would take ~%v)\n",
			images, time.Duration(p.Now()-start).Round(time.Millisecond),
			time.Duration(images)*lat.Mean())
		done = true
	})
	cloud.K.RunUntil(sim.Time(time.Hour))
	if !done {
		panic("fan-out did not finish")
	}

	fmt.Printf("per-image latency: mean=%v p50=%v p99=%v\n",
		lat.Mean().Round(time.Millisecond), lat.Median().Round(time.Millisecond),
		lat.Percentile(99).Round(time.Millisecond))
	fmt.Printf("platform autoscaled onto %d shared VMs (20 containers each)\n", cloud.Lambda.VMCount())
	fmt.Printf("bill: %v across %d invocations\n",
		cloud.Meter.Cost("lambda.gbsec")+cloud.Meter.Cost("lambda.request"),
		cloud.Meter.Count("lambda.request"))
}

func key(i int) string { return fmt.Sprintf("images/img-%03d", i) }
