// Statefulserving: the paper's §4 "fluid, function-colocated state" demo.
// A session-counting service runs twice: once the §3.1 way (every state op
// is a DynamoDB round trip) and once with the state cache (each hosting VM
// carries a CRDT replica; reads are local memory, writes gossip between
// replicas and write-behind-flush to the store). Same seed, same traffic —
// the difference is where the state lives.
//
//	go run ./examples/statefulserving
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faas"
	"repro/internal/sim"
	"repro/internal/statecache"
)

const (
	workers = 3
	rounds  = 40 // state ops per worker
)

var seed = flag.Uint64("seed", 11, "simulation seed (the cached run uses seed+1)")

func main() {
	flag.Parse()
	fmt.Printf("%d concurrent workers, %d session-counter ops each\n\n", workers, rounds)

	unTime, unBill := run(*seed, false)
	caTime, caBill := run(*seed+1, true)

	fmt.Printf("\nuncached (DynamoDB round trips): %8v/op, state bill %v\n",
		unTime.Round(100*time.Microsecond), unBill)
	fmt.Printf("cached (colocated CRDT replicas): %8v/op, state bill %v\n",
		caTime.Round(10*time.Nanosecond), caBill)
	fmt.Printf("\ndata shipping costs %.0fx per op; lattice merges make the local copy safe\n",
		unTime.Seconds()/caTime.Seconds())
}

// run measures mean per-op latency plus the state-tier bill for one variant.
func run(seed uint64, cached bool) (time.Duration, string) {
	cfg := core.DefaultConfig()
	cfg.Lambda.ContainersPerVM = 1 // one replica per worker VM
	cloud := core.NewCloudWith(seed, cfg)
	defer cloud.Close()

	var cl *statecache.Cluster
	if cached {
		cl = statecache.New("sessions", cloud.Net, cloud.DDB, cloud.RNG.Fork(),
			statecache.DefaultConfig(), cloud.Catalog, cloud.Meter)
		cloud.Lambda.AttachStateCache(cl)
	}

	var opTime time.Duration
	ops := 0
	handler := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		p := ctx.Proc()
		me := string(payload)
		for i := 0; i < rounds; i++ {
			start := p.Now()
			if cached {
				c := ctx.Cache()
				c.AddCounter(p, "visits", 1)
				c.AddSet(p, "active", me)
				c.SetRegister(p, "last-seen", me)
			} else {
				// The blackboard way: every op ships state to the store.
				if _, err := cloud.DDB.Put(p, ctx.Node(), "visits/"+me, payload); err != nil {
					return nil, err
				}
				if _, err := cloud.DDB.Get(p, ctx.Node(), "visits/"+me, true); err != nil {
					return nil, err
				}
			}
			opTime += time.Duration(p.Now() - start)
			ops++
			p.Sleep(50 * time.Millisecond) // think time between session events
		}
		return nil, nil
	}
	if err := cloud.Lambda.Register(faas.Function{
		Name: "session", MemoryMB: 256, Timeout: time.Minute, Handler: handler,
	}); err != nil {
		panic(err)
	}

	cloud.K.Spawn("driver", func(p *sim.Proc) {
		var wg sim.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			name := fmt.Sprintf("w%d", w)
			p.Spawn(name, func(wp *sim.Proc) {
				defer wg.Done()
				if _, _, err := cloud.Lambda.Invoke(wp, "session", []byte(name)); err != nil {
					panic(err)
				}
			})
		}
		wg.Wait(p)
		if cl != nil {
			p.Sleep(time.Second) // let gossip converge, then show it
			cl.Accrue(p.Now())
			for w := 0; w < workers; w++ {
				// Any replica answers: the lattice join carries every
				// worker's deltas to every VM.
				node := cloud.Net.Node(fmt.Sprintf("lambda-vm-%d", w+1))
				if node == nil {
					continue
				}
				if rep := cl.Replica(node); rep != nil {
					fmt.Printf("  replica on lambda-vm-%d: visits=%d active=%v last-seen=%q\n",
						w+1, rep.PeekCounter("visits"), rep.PeekSet("active"),
						rep.PeekRegister("last-seen"))
				}
			}
			fmt.Printf("  gossip staleness: %v\n", cl.Staleness())
		}
	})
	cloud.K.RunUntil(sim.Time(5 * time.Minute))

	bill := cloud.Meter.Cost("dynamodb.read") + cloud.Meter.Cost("dynamodb.write") +
		cloud.Meter.Cost("statecache.gbsec")
	return opTime / time.Duration(ops), bill.String()
}
