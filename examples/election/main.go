// Election: the paper's §3.1 distributed-computing case study, live. The
// same bully protocol runs twice — once with every message forced through a
// DynamoDB blackboard polled at 4Hz (the only option on FaaS), once over
// direct addressable messaging — and prints both failover timelines.
//
//	go run ./examples/election
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/election"
	"repro/internal/netsim"
	"repro/internal/sim"
)

const members = 5

var seed = flag.Uint64("seed", 21, "simulation seed (direct-messaging run uses seed+1)")

func main() {
	flag.Parse()
	fmt.Println("bully leader election, 5 nodes, leader killed after things settle")
	bbRound, bbCost := onBlackboard()
	directRound := onDirect()
	fmt.Printf("\nblackboard (DynamoDB, 4Hz polling): failover in %v, storage bill %v for the run\n",
		bbRound.Round(100*time.Millisecond), bbCost)
	fmt.Printf("direct messaging:                   failover in %v\n",
		directRound.Round(time.Millisecond))
	fmt.Printf("storage-mediated coordination is %.0fx slower\n",
		bbRound.Seconds()/directRound.Seconds())
}

func agreed(nodes []*election.Node) int {
	leader := -1
	for _, n := range nodes {
		if n.Stopped() {
			continue
		}
		if n.Leader() < 0 {
			return -1
		}
		if leader == -1 {
			leader = n.Leader()
		} else if n.Leader() != leader {
			return -1
		}
	}
	return leader
}

func waitFor(k *sim.Kernel, horizon sim.Time, cond func() bool) {
	for t := k.Now(); t < horizon && !cond(); t += sim.Time(100 * time.Millisecond) {
		k.RunUntil(t)
	}
	if !cond() {
		panic("election example: no agreement within horizon")
	}
}

func onBlackboard() (time.Duration, string) {
	cloud := core.NewCloud(*seed)
	defer cloud.Close()
	bb := election.NewBlackboard(cloud.DDB, election.PaperParams())
	var nodes []*election.Node
	for id := 1; id <= members; id++ {
		host := cloud.Net.NewNode(fmt.Sprintf("fn-host-%d", id), 1, netsim.Mbps(538))
		n := election.NewNode(id, bb.ForNode(id, host), election.PaperParams())
		n.Start(cloud.K)
		nodes = append(nodes, n)
	}
	waitFor(cloud.K, sim.Time(3*time.Minute), func() bool { return agreed(nodes) == members })
	fmt.Printf("  [blackboard] initial leader: node %d (after %v)\n",
		agreed(nodes), time.Duration(cloud.K.Now()).Round(time.Second))
	cloud.K.RunUntil(cloud.K.Now() + sim.Time(20*time.Second))

	crash := cloud.K.Now()
	nodes[members-1].Stop()
	waitFor(cloud.K, crash+sim.Time(2*time.Minute), func() bool {
		a := agreed(nodes)
		return a > 0 && a != members
	})
	round := time.Duration(cloud.K.Now() - crash)
	fmt.Printf("  [blackboard] node %d crashed; node %d took over after %v\n",
		members, agreed(nodes), round.Round(100*time.Millisecond))
	return round, cloud.Meter.Total().String()
}

func onDirect() time.Duration {
	cloud := core.NewCloud(*seed + 1)
	defer cloud.Close()
	ids := make([]int, members)
	for i := range ids {
		ids[i] = i + 1
	}
	dn := election.NewDirectNet(cloud.Mesh, election.DirectParams(), ids)
	var nodes []*election.Node
	for _, id := range ids {
		host := cloud.Net.NewNode(fmt.Sprintf("agent-host-%d", id), 0, netsim.Gbps(10))
		n := election.NewNode(id, dn.ForNode(id, host), election.DirectParams())
		n.Start(cloud.K)
		nodes = append(nodes, n)
	}
	waitFor(cloud.K, sim.Time(time.Minute), func() bool { return agreed(nodes) == members })
	fmt.Printf("  [direct]     initial leader: node %d (after %v)\n",
		agreed(nodes), time.Duration(cloud.K.Now()).Round(time.Millisecond))
	cloud.K.RunUntil(cloud.K.Now() + sim.Time(2*time.Second))

	crash := cloud.K.Now()
	nodes[members-1].Stop()
	waitFor(cloud.K, crash+sim.Time(time.Minute), func() bool {
		a := agreed(nodes)
		return a > 0 && a != members
	})
	round := time.Duration(cloud.K.Now() - crash)
	fmt.Printf("  [direct]     node %d crashed; node %d took over after %v\n",
		members, agreed(nodes), round.Round(time.Millisecond))
	return round
}
