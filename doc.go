// Package repro is a from-scratch Go reproduction of "Serverless Computing:
// One Step Forward, Two Steps Back" (Hellerstein et al., CIDR 2019).
//
// The paper's evaluation ran on AWS; this repository rebuilds every system
// it touched as a deterministic discrete-event simulation — a Lambda-style
// FaaS platform, S3/DynamoDB/SQS-style services, EC2 instances with EBS,
// ZeroMQ-style direct messaging, a datacenter network with max-min fair
// bandwidth sharing — plus the real workloads (an MLP with Adam, a
// dirty-word classifier, Garcia-Molina's bully election) and regenerates
// every table and figure.
//
// Entry points:
//
//   - internal/core: cloud assembly, calibration constants, and one
//     experiment per paper artifact (also see cmd/faasbench).
//   - bench_test.go (this package): one testing.B benchmark per table and
//     figure.
//   - examples/: runnable walkthroughs of the public API.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for paper-vs-measured results.
package repro
