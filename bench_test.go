package repro

// One benchmark per table and figure in the paper. Each benchmark runs the
// corresponding experiment end to end on the simulated cloud and reports
// the headline quantity as a custom metric, so `go test -bench=.` doubles
// as the reproduction harness. Results are deterministic per seed; the
// ns/op column measures simulator wall time, the custom metrics carry the
// paper-comparable numbers.

import (
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
)

// headline extracts a rendered cell from an experiment's first table.
func headline(b *testing.B, tables []*core.Table, rowPrefix string, col int) string {
	b.Helper()
	for _, row := range tables[0].Rows {
		if strings.HasPrefix(row[0], rowPrefix) {
			return row[col]
		}
	}
	b.Fatalf("no row %q in %q", rowPrefix, tables[0].Title)
	return ""
}

var benchDurRe = regexp.MustCompile(`([0-9.]+)(ns|µs|ms|s|min)`)

func asMillis(b *testing.B, cell string) float64 {
	b.Helper()
	m := benchDurRe.FindStringSubmatch(cell)
	if m == nil {
		b.Fatalf("cannot parse %q", cell)
	}
	v, _ := strconv.ParseFloat(m[1], 64)
	switch m[2] {
	case "ns":
		return v / 1e6
	case "µs":
		return v / 1000
	case "ms":
		return v
	case "s":
		return v * 1000
	default:
		return v * 60 * 1000
	}
}

func asDollars(b *testing.B, cell string) float64 {
	b.Helper()
	s := strings.TrimSuffix(strings.TrimPrefix(cell, "$"), "/hr")
	v, err := strconv.ParseFloat(strings.ReplaceAll(s, ",", ""), 64)
	if err != nil {
		b.Fatalf("cannot parse %q", cell)
	}
	return v
}

// BenchmarkTable1Latencies regenerates Table 1 (1KB communication costs).
func BenchmarkTable1Latencies(b *testing.B) {
	var tables []*core.Table
	for i := 0; i < b.N; i++ {
		tables = core.RunTable1(1)
	}
	b.ReportMetric(asMillis(b, headline(b, tables, "Latency", 1)), "invoke-ms")
	b.ReportMetric(asMillis(b, headline(b, tables, "Latency", 2)), "lambda-s3-ms")
	b.ReportMetric(asMillis(b, headline(b, tables, "Latency", 3)), "lambda-ddb-ms")
	b.ReportMetric(asMillis(b, headline(b, tables, "Latency", 6))*1000, "zmq-us")
}

// BenchmarkFigure1Trends regenerates Figure 1 (trends chart).
func BenchmarkFigure1Trends(b *testing.B) {
	var tables []*core.Table
	for i := 0; i < b.N; i++ {
		tables = core.RunFigure1(1)
	}
	if len(tables[0].Rows) != 2 {
		b.Fatal("figure 1 incomplete")
	}
}

// BenchmarkTrainingCaseStudy regenerates the §3.1 training table
// (paper: 465min/$0.29 on Lambda vs 21.7min/$0.04 on EC2 — 21x / 7.3x).
func BenchmarkTrainingCaseStudy(b *testing.B) {
	var tables []*core.Table
	for i := 0; i < b.N; i++ {
		tables = core.RunTraining(1)
	}
	lambdaMin := asMillis(b, headline(b, tables, "Lambda", 5)) / 60000
	ec2Min := asMillis(b, headline(b, tables, "EC2 m4.large", 5)) / 60000
	b.ReportMetric(lambdaMin, "lambda-min")
	b.ReportMetric(ec2Min, "ec2-min")
	b.ReportMetric(lambdaMin/ec2Min, "slowdown-x")
}

// BenchmarkServingLatency regenerates the §3.1 serving latencies
// (paper: 559ms / 447ms / 13ms / 2.8ms).
func BenchmarkServingLatency(b *testing.B) {
	var tables []*core.Table
	for i := 0; i < b.N; i++ {
		tables = core.RunServing(1)
	}
	b.ReportMetric(asMillis(b, headline(b, tables, "Lambda, model fetched", 1)), "lambda-fetch-ms")
	b.ReportMetric(asMillis(b, headline(b, tables, "Lambda, compiled-in", 1)), "lambda-opt-ms")
	b.ReportMetric(asMillis(b, headline(b, tables, "EC2 m5.large + SQS", 1)), "ec2-sqs-ms")
	b.ReportMetric(asMillis(b, headline(b, tables, "EC2 m5.large + ZeroMQ", 1)), "ec2-zmq-ms")
}

// BenchmarkServingCost regenerates the 1M msg/s cost analysis
// (paper: $1,584/hr SQS vs $27.84/hr EC2 — 57x).
func BenchmarkServingCost(b *testing.B) {
	var tables []*core.Table
	for i := 0; i < b.N; i++ {
		tables = core.RunServingCost(1)
	}
	sqs := asDollars(b, headline(b, tables, "SQS requests alone", 2))
	ec2 := asDollars(b, headline(b, tables, "EC2 m5.large fleet", 2))
	b.ReportMetric(sqs, "sqs-usd-hr")
	b.ReportMetric(ec2, "ec2-usd-hr")
	b.ReportMetric(sqs/ec2, "ratio-x")
}

// BenchmarkElectionBlackboard regenerates the §3.1 election case study
// (paper: 16.7s rounds, 1.9% of lifetime, >= $450/hr at 1,000 nodes).
func BenchmarkElectionBlackboard(b *testing.B) {
	var tables []*core.Table
	for i := 0; i < b.N; i++ {
		tables = core.RunElection(1)
	}
	b.ReportMetric(asMillis(b, headline(b, tables, "Election round", 1))/1000, "round-s")
	b.ReportMetric(asDollars(b, headline(b, tables, "Storage cost, 1,000 nodes", 1)), "usd-hr-1000n")
}

// BenchmarkBandwidthSweep regenerates the per-function bandwidth collapse
// (paper: 538 Mbps solo, 28.7 Mbps at 20 functions).
func BenchmarkBandwidthSweep(b *testing.B) {
	var tables []*core.Table
	for i := 0; i < b.N; i++ {
		tables = core.RunBandwidth(1)
	}
	solo, _ := strconv.ParseFloat(strings.Fields(headline(b, tables, "1", 1))[0], 64)
	packed, _ := strconv.ParseFloat(strings.Fields(headline(b, tables, "20", 1))[0], 64)
	b.ReportMetric(solo, "solo-mbps")
	b.ReportMetric(packed, "packed20-mbps")
}

// BenchmarkWorkflowSignup regenerates the §2 composition-overhead table.
func BenchmarkWorkflowSignup(b *testing.B) {
	var tables []*core.Table
	for i := 0; i < b.N; i++ {
		tables = core.RunWorkflow(1)
	}
	b.ReportMetric(asMillis(b, headline(b, tables, "FaaS pipeline", 1)), "pipeline-ms")
	b.ReportMetric(asMillis(b, headline(b, tables, "Single EC2 process", 1)), "monolith-ms")
}

// BenchmarkAblationFirecracker regenerates footnote 5's what-if.
func BenchmarkAblationFirecracker(b *testing.B) {
	var tables []*core.Table
	for i := 0; i < b.N; i++ {
		tables = core.RunFirecracker(1)
	}
	b.ReportMetric(asMillis(b, headline(b, tables, "Cold invoke", 1)), "cold-classic-ms")
	b.ReportMetric(asMillis(b, headline(b, tables, "Cold invoke", 2)), "cold-firecracker-ms")
}

// BenchmarkAblationFastNIC regenerates footnote 4's what-if.
func BenchmarkAblationFastNIC(b *testing.B) {
	var tables []*core.Table
	for i := 0; i < b.N; i++ {
		tables = core.RunFastNIC(1)
	}
	v, _ := strconv.ParseFloat(strings.Fields(headline(b, tables, "64", 1))[0], 64)
	b.ReportMetric(v/8, "mbytes-per-core")
}

// BenchmarkFuturePlatform regenerates the §4 prototype comparison.
func BenchmarkFuturePlatform(b *testing.B) {
	var tables []*core.Table
	for i := 0; i < b.N; i++ {
		tables = core.RunFuture(1)
	}
	b.ReportMetric(asMillis(b, headline(b, tables, "Model training", 2))/60000, "training-min")
	b.ReportMetric(asMillis(b, headline(b, tables, "Prediction serving", 2)), "serving-ms")
}

// BenchmarkElectionSweep regenerates the polling-rate sensitivity table.
func BenchmarkElectionSweep(b *testing.B) {
	var tables []*core.Table
	for i := 0; i < b.N; i++ {
		tables = core.RunElectionSweep(1)
	}
	b.ReportMetric(asMillis(b, headline(b, tables, "1 Hz", 1))/1000, "round-1hz-s")
	b.ReportMetric(asMillis(b, headline(b, tables, "8 Hz", 1))/1000, "round-8hz-s")
}

// BenchmarkAutoscaleUnderLoad regenerates the §1.2 "step forward" table.
func BenchmarkAutoscaleUnderLoad(b *testing.B) {
	var tables []*core.Table
	for i := 0; i < b.N; i++ {
		tables = core.RunAutoscale(1)
	}
	b.ReportMetric(asMillis(b, headline(b, tables, "50 req/s", 2)), "lambda-p99-ms")
	b.ReportMetric(asMillis(b, headline(b, tables, "50 req/s", 4))/1000, "ec2-p99-s")
}

// BenchmarkRegionScaleKV runs the region-scale sharding scenario (no paper
// counterpart; the ROADMAP's scaling direction): a 4,000 req/s open-loop
// load against one logical KV table at growing shard counts, reporting
// aggregate throughput at 1 and 4 shards and the measured speedup.
func BenchmarkRegionScaleKV(b *testing.B) {
	var tables []*core.Table
	for i := 0; i < b.N; i++ {
		tables = core.RunRegionScale(1)
	}
	rps := func(shardRow string) float64 {
		v, err := strconv.ParseFloat(headline(b, tables, shardRow, 1), 64)
		if err != nil {
			b.Fatalf("cannot parse throughput for %s shards", shardRow)
		}
		return v
	}
	shard1, shard4 := rps("1"), rps("4")
	b.ReportMetric(shard1, "shard1-rps")
	b.ReportMetric(shard4, "shard4-rps")
	b.ReportMetric(shard4/shard1, "speedup4-x")
	b.ReportMetric(asMillis(b, headline(b, tables, "4", 4)), "shard4-p99-ms")
}

// BenchmarkFaaSScale runs the FaaS serving-tier scaling scenario (no paper
// counterpart; the ROADMAP's scaling direction): flash-crowd load through
// SQS -> Lambda -> sharded kvstore at growing provisioned concurrency,
// reporting the cold-start fraction and tail latency at the sweep's ends
// plus the autoscaled point's hourly cost.
func BenchmarkFaaSScale(b *testing.B) {
	var tables []*core.Table
	for i := 0; i < b.N; i++ {
		tables = core.RunFaaSScale(1)
	}
	coldPct := func(row string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(headline(b, tables, row, 4), "%"), 64)
		if err != nil {
			b.Fatalf("cannot parse cold fraction for row %s", row)
		}
		return v
	}
	b.ReportMetric(coldPct("0"), "cold0-pct")
	b.ReportMetric(coldPct("32"), "cold32-pct")
	b.ReportMetric(asMillis(b, headline(b, tables, "0", 3)), "p99-prov0-ms")
	b.ReportMetric(asMillis(b, headline(b, tables, "32", 3)), "p99-prov32-ms")
	b.ReportMetric(asDollars(b, headline(b, tables, "auto", 6)), "auto-usd-hr")
}

// BenchmarkMillionUserKV runs the million-user scenario (the ROADMAP's
// top open item): 10⁶ simulated clients at 100k req/s aggregate through
// the aggregated load population, sweeping 16/32/64 shards, with
// latencies held in fixed-memory sketches. Reported: completed throughput
// at the sweep's ends, the 64-shard sketched tails, the hourly bill, and
// the process's peak heap — the number the fixed-memory refactor exists
// to keep flat.
func BenchmarkMillionUserKV(b *testing.B) {
	var tables []*core.Table
	for i := 0; i < b.N; i++ {
		tables = core.RunMillionUser(1)
	}
	rps := func(shardRow string) float64 {
		v, err := strconv.ParseFloat(headline(b, tables, shardRow, 1), 64)
		if err != nil {
			b.Fatalf("cannot parse throughput for %s shards", shardRow)
		}
		return v
	}
	b.ReportMetric(rps("16"), "shard16-rps")
	b.ReportMetric(rps("64"), "shard64-rps")
	b.ReportMetric(asMillis(b, headline(b, tables, "64", 2)), "shard64-p50-ms")
	b.ReportMetric(asMillis(b, headline(b, tables, "64", 3)), "shard64-p99-ms")
	b.ReportMetric(asMillis(b, headline(b, tables, "64", 4)), "shard64-p999-ms")
	b.ReportMetric(asDollars(b, headline(b, tables, "64", 6)), "usd-hr")
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapSys)/(1<<20), "peak-heap-mb")
}

// BenchmarkStateCacheScale runs the function-colocated state-cache
// scenario (the paper's §4 fluid-state direction): identical stateful
// workloads against the DynamoDB-class store and against VM-colocated CRDT
// replicas with gossip anti-entropy, sweeping replica count and gossip
// interval. Reported: read tails on both sides, the measured staleness
// window, and the cached/uncached p99 ratio.
func BenchmarkStateCacheScale(b *testing.B) {
	var tables []*core.Table
	for i := 0; i < b.N; i++ {
		tables = core.RunStateCache(1)
	}
	uncachedP99 := asMillis(b, headline(b, tables, "uncached", 5))
	cachedRow := func(col int) string {
		for _, row := range tables[0].Rows {
			if row[0] == "cached" && row[1] == "4" && row[2] == "200.0ms" {
				return row[col]
			}
		}
		b.Fatal("no cached 4-replica/200ms row")
		return ""
	}
	cachedP99 := asMillis(b, cachedRow(5))
	b.ReportMetric(uncachedP99, "uncached-p99-ms")
	b.ReportMetric(cachedP99*1e6, "cached-p99-ns")
	b.ReportMetric(uncachedP99/cachedP99, "p99-ratio-x")
	b.ReportMetric(asMillis(b, cachedRow(6)), "stale-p99-ms")
}

// sanity: experiments must be deterministic — identical output across runs
// with the same seed. Guarded here (not in internal/core) so the bench
// harness itself verifies reproducibility.
func TestExperimentsDeterministic(t *testing.T) {
	for _, id := range []string{"table1", "servingcost", "bandwidth", "regionscale", "faasscale"} {
		e, ok := core.ExperimentByID(id)
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		a := render(e.Run(7))
		b := render(e.Run(7))
		if a != b {
			t.Errorf("experiment %s is nondeterministic", id)
		}
	}
}

func render(tables []*core.Table) string {
	var sb strings.Builder
	for _, tb := range tables {
		sb.WriteString(tb.Render())
	}
	return sb.String()
}
