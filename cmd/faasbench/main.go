// Command faasbench regenerates every table and figure from "Serverless
// Computing: One Step Forward, Two Steps Back" (CIDR 2019) on the simulated
// cloud.
//
// Usage:
//
//	faasbench -list
//	faasbench -run table1
//	faasbench -run all [-seed 42] [-workers 8]
//	faasbench -run millionuser [-users 1000000]
//	faasbench -run regionscale -sketch -population
//
// Multi-point experiments fan their sweep points across -workers
// concurrent simulator kernels (default GOMAXPROCS; the SWEEP_WORKERS
// environment variable also overrides). Output is byte-identical at any
// worker count — each point derives its randomness from (seed, point)
// alone and results merge in point order.
//
// -sketch swaps every experiment's exact latency recorder for a
// fixed-memory quantile sketch (≤1% percentile error; mean, extremes, and
// counts stay exact), and -population swaps per-arrival load generation
// for one aggregated Poisson client population (-users sizes it). -recon
// swaps statecache gossip's per-key digest exchange for constant-size
// invertible-Bloom-filter summaries (O(diff) bytes per round). All
// default off, so default output is byte-identical to earlier releases;
// the millionuser experiment always uses sketch+population, and the
// millionkey experiment runs both gossip protocols side by side.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/sweep"
)

func main() {
	runID := flag.String("run", "all", "experiment id to run, or 'all'")
	seed := flag.Uint64("seed", 1, "deterministic simulation seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	workers := flag.Int("workers", 0,
		"concurrent sweep workers (0 = GOMAXPROCS or $SWEEP_WORKERS)")
	sketch := flag.Bool("sketch", false,
		"record latencies in fixed-memory sketches (≤1% percentile error) instead of exact recorders")
	population := flag.Bool("population", false,
		"drive Poisson load from one aggregated client population instead of one process per arrival")
	users := flag.Int("users", 0,
		"override the simulated client-population size (0 = each experiment's default)")
	recon := flag.Bool("recon", false,
		"reconcile statecache gossip with constant-size IBF summaries instead of per-key digests")
	chaosOn := flag.Bool("chaos", true,
		"inject the regionfailover experiment's faults (false = healthy control rows only)")
	regions := flag.Int("regions", 0,
		"override the regionfailover experiment's region count (0 = default of 2)")
	policy := flag.String("policy", "all",
		"restrict the retrystorm experiment to one client policy (no-retry, naive-retry, full-policy, full+hedge, or all)")
	flag.Parse()
	sweep.SetWorkers(*workers)
	core.SetSketchStats(*sketch)
	core.SetPopulationLoad(*population)
	core.SetUsers(*users)
	core.SetReconGossip(*recon)
	core.SetChaos(*chaosOn)
	core.SetRegions(*regions)
	if *policy != "" && *policy != "all" {
		known := false
		for _, name := range core.PolicyNames() {
			if name == *policy {
				known = true
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "faasbench: unknown -policy %q (want one of %v, or all)\n",
				*policy, core.PolicyNames())
			os.Exit(2)
		}
	}
	core.SetPolicy(*policy)

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	var exps []core.Experiment
	if *runID == "all" {
		exps = core.Experiments()
	} else {
		e, ok := core.ExperimentByID(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "faasbench: unknown experiment %q (use -list)\n", *runID)
			os.Exit(2)
		}
		exps = []core.Experiment{e}
	}

	for _, e := range exps {
		start := time.Now()
		tables := e.Run(*seed)
		elapsed := time.Since(start)
		fmt.Printf("== %s  (id=%s, seed=%d, wall=%.1fs)\n\n", e.Title, e.ID, *seed, elapsed.Seconds())
		for _, t := range tables {
			fmt.Println(t.Render())
		}
	}
}
