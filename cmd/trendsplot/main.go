// Command trendsplot renders Figure 1 (the Google Trends comparison of
// "Serverless" and "MapReduce") as an ASCII chart.
//
// Usage:
//
//	trendsplot [-height 16]
package main

import (
	"flag"
	"fmt"

	"repro/internal/trends"
)

func main() {
	height := flag.Int("height", 16, "chart height in rows")
	flag.Parse()

	fmt.Print(trends.Chart(*height))
	mrPeak, mrWhen := trends.MapReduce().Peak()
	sl := trends.Serverless().Last()
	fmt.Printf("\nMapReduce peak: %.1f at %s; Serverless %s: %.1f (%.0f%% of the peak)\n",
		mrPeak, mrWhen.Label(), sl.Label(), sl.Value, sl.Value/mrPeak*100)
	if x := trends.CrossoverQuarter(); x != nil {
		fmt.Printf("Serverless passes MapReduce in %s\n", x.Label())
	}
}
